"""Parallel batch execution of :class:`JobSpec` grids.

The engine fans a list of specs across a ``ProcessPoolExecutor``:

* cache lookups happen first, so warm batches never touch a worker;
* each miss is pickled to a worker that rebuilds the algorithm/graph
  from the spec and returns a :class:`RunSummary` dict;
* a job whose *worker process dies* (crash, OOM-kill) is retried once
  on a fresh pool before a structured failure is recorded — a job that
  raises a normal exception fails immediately (deterministic errors
  don't deserve a second simulation);
* an optional per-job timeout turns an unresponsive job into a
  structured failure instead of hanging the batch;
* results come back in submission order regardless of completion
  order, so parallel grids are drop-in equal to serial ones.

``jobs=1`` (the default, also via ``REPRO_JOBS``) executes serially
in-process — no pool, no pickling — which is what the benchmark suite
and tier-1 tests use.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ReproError
from repro.obs.metrics import get_registry
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.runtime.cache import ResultCache, RunSummary
from repro.runtime.jobspec import JobSpec
from repro.runtime.telemetry import Telemetry


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    return max(1, int(jobs))


def _execute_spec(spec: JobSpec) -> Dict[str, Any]:
    """Run one job, return its summary dict.

    Module-level (not a method) so ``ProcessPoolExecutor`` can pickle
    it by reference; returns plain dicts so nothing exotic crosses the
    process boundary.
    """
    result = spec.execute()
    return RunSummary.from_run_result(result).to_dict()


def _pool_execute(spec: JobSpec) -> Dict[str, Any]:
    """Process-pool entry point: execute, then ship worker metrics.

    Attaches the worker registry's snapshot under ``"_metrics"`` and
    clears it, so the parent can fold worker-side metrics — kernel
    counters, phase and stall cycles — into its own registry.  Only the
    pool path ships: on the serial path the job already accumulates
    into the parent registry directly, and a snapshot+clear would wipe
    unrelated counters.  Dispatches through the module global so tests
    can monkeypatch ``_execute_spec`` for both paths.
    """
    out = _execute_spec(spec)
    registry = get_registry()
    if registry.enabled:
        out["_metrics"] = registry.snapshot()
        registry.clear()
    return out


def _absorb_metrics(data: Dict[str, Any]) -> Dict[str, Any]:
    """Merge a worker's shipped metrics snapshot into this process."""
    snap = data.pop("_metrics", None)
    if snap:
        get_registry().merge_snapshot(snap)
    return data


# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """Structured result of one engine job."""

    spec: JobSpec
    status: str  # "ok" | "cached" | "failed"
    summary: Optional[RunSummary] = None
    error: Optional[str] = None
    attempts: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether a usable summary is attached."""
        return self.status in ("ok", "cached")


class BatchEngine:
    """Schedule, parallelize, cache and observe a batch of jobs."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """``timeout`` is per-job wall seconds (None = unbounded);
        ``retries`` counts extra attempts after a worker crash;
        ``tracer`` records one span per job lifecycle (submit to
        completion) for Chrome trace export."""
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.timeout = timeout
        self.retries = max(0, retries)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    def _job_done(self, status: str, wall: float) -> None:
        """Per-job registry bookkeeping shared by all completion paths."""
        registry = get_registry()
        registry.counter("engine_jobs_total",
                         "Engine jobs by final status").inc(status=status)
        if status != "cached":  # cached jobs never entered the gauge
            registry.gauge("engine_jobs_in_flight",
                           "Jobs started but not finished").inc(-1)
            registry.histogram("engine_job_wall_seconds",
                               "Wall-clock seconds per job").observe(wall)

    def _job_started(self) -> None:
        get_registry().gauge("engine_jobs_in_flight",
                             "Jobs started but not finished").inc(1)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> List[JobOutcome]:
        """Execute a batch; outcomes align index-for-index with specs."""
        outcomes: Dict[int, JobOutcome] = {}
        pending: List[Tuple[int, JobSpec]] = []
        for idx, spec in enumerate(specs):
            self.telemetry.emit("submitted", spec)
            if self.cache is not None:
                summary = self.cache.get(spec)
                if summary is not None:
                    outcomes[idx] = JobOutcome(spec, "cached", summary)
                    self.telemetry.emit("cached", spec,
                                        cycles=summary.total_cycles)
                    self._job_done("cached", 0.0)
                    continue
            pending.append((idx, spec))

        if pending:
            if self.jobs <= 1:
                self._run_serial(pending, outcomes)
            else:
                self._run_parallel(pending, outcomes)

        self.telemetry.emit_batch_summary(cache=self.cache)
        return [outcomes[i] for i in range(len(specs))]

    # ------------------------------------------------------------------
    def _record_success(self, idx: int, spec: JobSpec,
                        summary: RunSummary, attempts: int, wall: float,
                        outcomes: Dict[int, JobOutcome]) -> None:
        if self.cache is not None:
            self.cache.put(spec, summary)
        outcomes[idx] = JobOutcome(spec, "ok", summary, None, attempts,
                                   wall)
        self.telemetry.emit("finished", spec,
                            cycles=summary.total_cycles,
                            wall=round(wall, 6), attempt=attempts)
        self._job_done("ok", wall)

    def _record_failure(self, idx: int, spec: JobSpec, error: str,
                        attempts: int, wall: float,
                        outcomes: Dict[int, JobOutcome]) -> None:
        outcomes[idx] = JobOutcome(spec, "failed", None, error, attempts,
                                   wall)
        self.telemetry.emit("failed", spec, error=error, attempt=attempts)
        self._job_done("failed", wall)

    def _run_serial(self, pending, outcomes) -> None:
        for idx, spec in pending:
            self.telemetry.emit("started", spec, attempt=1)
            self._job_started()
            start = time.perf_counter()
            with self.tracer.span(f"job:{spec.label}", cat="job",
                                  tid="engine") as span:
                try:
                    summary = RunSummary.from_dict(_execute_spec(spec))
                except Exception as exc:  # noqa: BLE001 - structured
                    span.args["status"] = "failed"
                    self._record_failure(
                        idx, spec, f"{type(exc).__name__}: {exc}", 1,
                        time.perf_counter() - start, outcomes)
                    continue
                span.args["status"] = "ok"
                span.args["cycles"] = summary.total_cycles
                self._record_success(idx, spec, summary, 1,
                                     time.perf_counter() - start,
                                     outcomes)

    def _run_parallel(self, pending, outcomes) -> None:
        queue: List[Tuple[int, JobSpec, int]] = [
            (idx, spec, 1) for idx, spec in pending
        ]
        while queue:
            batch, queue = queue, []
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(batch))
            )
            futures = []
            try:
                for idx, spec, attempt in batch:
                    self.telemetry.emit("started", spec, attempt=attempt)
                    self._job_started()
                    futures.append(
                        (idx, spec, attempt, time.perf_counter(),
                         pool.submit(_pool_execute, spec))
                    )
                for idx, spec, attempt, start, future in futures:
                    wall = None
                    try:
                        data = _absorb_metrics(
                            future.result(timeout=self.timeout))
                        wall = time.perf_counter() - start
                        self.tracer.add_span(
                            f"job:{spec.label}", "job",
                            self.tracer.now_us() - wall * 1e6,
                            wall * 1e6, tid="engine", status="ok")
                        self._record_success(
                            idx, spec, RunSummary.from_dict(data),
                            attempt, wall, outcomes)
                    except FutureTimeoutError:
                        future.cancel()
                        self._record_failure(
                            idx, spec,
                            f"timed out after {self.timeout}s", attempt,
                            time.perf_counter() - start, outcomes)
                    except BrokenProcessPool:
                        # The worker process died. Give the job another
                        # chance on a fresh pool; siblings caught in the
                        # same pool collapse are requeued for free.
                        if attempt <= self.retries:
                            self.telemetry.emit("retried", spec,
                                                attempt=attempt + 1)
                            registry = get_registry()
                            registry.counter(
                                "engine_retries_total",
                                "Jobs requeued after a worker crash"
                            ).inc()
                            # The retry re-enters the gauge when its
                            # fresh attempt starts.
                            registry.gauge(
                                "engine_jobs_in_flight",
                                "Jobs started but not finished").inc(-1)
                            queue.append((idx, spec, attempt + 1))
                        else:
                            self._record_failure(
                                idx, spec,
                                "worker process crashed", attempt,
                                time.perf_counter() - start, outcomes)
                    except Exception as exc:  # noqa: BLE001
                        # Raised *inside* the worker and pickled back:
                        # deterministic, so fail without a retry.
                        self._record_failure(
                            idx, spec, f"{type(exc).__name__}: {exc}",
                            attempt, time.perf_counter() - start,
                            outcomes)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
def run_specs(
    specs: Sequence[JobSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    timeout: Optional[float] = None,
) -> List[JobOutcome]:
    """One-shot convenience wrapper around :class:`BatchEngine`."""
    return BatchEngine(jobs=jobs, cache=cache, telemetry=telemetry,
                       timeout=timeout).run(specs)


def raise_on_failures(outcomes: Sequence[JobOutcome]) -> None:
    """Raise one :class:`ReproError` naming every failed job."""
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    details = "; ".join(
        f"{o.spec.label}: {o.error}" for o in failed[:5]
    )
    more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
    raise ReproError(
        f"{len(failed)} of {len(outcomes)} jobs failed: {details}{more}"
    )
