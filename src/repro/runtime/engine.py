"""Parallel batch execution of :class:`JobSpec` grids.

The engine fans a list of specs across a ``ProcessPoolExecutor``:

* journal lookups happen first (``--resume``), then cache lookups, so
  an interrupted batch restarts without re-simulating anything it
  already finished and warm batches never touch a worker;
* each miss is pickled to a worker that rebuilds the algorithm/graph
  from the spec and returns a :class:`RunSummary` dict;
* *transient* failures — a worker process dying (crash, OOM-kill) or
  a :class:`~repro.errors.TransientError` raised in the job — are
  retried on a fresh pool with exponential backoff, bounded by the
  per-job ``retries`` count and an optional per-batch
  ``retry_budget``; deterministic exceptions fail immediately (they
  would only reproduce themselves);
* an optional per-job timeout turns an unresponsive job into a
  structured failure instead of hanging the batch;
* ``fail_fast=True`` stops scheduling after the first failure and
  marks the rest of the batch ``"skipped"``; the default keeps going
  and returns every failure structurally;
* results come back in submission order regardless of completion
  order, so parallel grids are drop-in equal to serial ones.

``jobs=1`` (the default, also via ``REPRO_JOBS``) executes serially
in-process — no pool, no pickling — which is what the benchmark suite
and tier-1 tests use.  Fault injection (:mod:`repro.runtime.faults`)
hooks both paths so every recovery branch above is exercisable
deterministically; with ``REPRO_FAULTS`` unset the hooks are skipped
entirely.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ReproError, TransientError
from repro.obs.metrics import get_registry
from repro.obs.profile import get_profiler
from repro.obs.provenance import get_digester
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.runtime.cache import ResultCache, RunSummary
from repro.runtime.faults import (apply_serial_fault, apply_worker_fault,
                                  get_active_plan)
from repro.runtime.guard import DeadlineBudget, get_active_guard
from repro.runtime.jobspec import JobSpec
from repro.runtime.telemetry import Telemetry


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    return max(1, int(jobs))


def _execute_spec(spec: JobSpec) -> Dict[str, Any]:
    """Run one job, return its summary dict.

    Module-level (not a method) so ``ProcessPoolExecutor`` can pickle
    it by reference; returns plain dicts so nothing exotic crosses the
    process boundary.

    The single execution path shared by serial runs, pool workers and
    fleet leases, so the provenance ledger (``REPRO_DIGEST=1``) is
    captured identically everywhere: it rides inside the summary dict
    as the optional ``digest_ledger`` field, through pickling, the run
    journal, the result cache and the fleet protocol alike.
    """
    digester = get_digester()
    if digester.enabled:
        digester.begin_job()
    result = spec.execute()
    out = RunSummary.from_run_result(result).to_dict()
    if digester.enabled:
        ledger = digester.take_ledger()
        if ledger:
            out["digest_ledger"] = ledger
    return out


def _worker_entry(spec: JobSpec, fault=None) -> Dict[str, Any]:
    """Worker entry point: execute one job, then ship worker metrics.

    The single remote-execution path: ``ProcessPoolExecutor`` workers
    submit it directly, and :class:`repro.dist.Worker` calls it for
    every lease — so pool, fleet and serial runs cannot drift.

    ``fault`` is the parent-decided fault directive for this attempt
    (``None`` on the default path); applying it may kill the worker,
    hang, or raise before the job runs.  Attaches the worker
    registry's snapshot under ``"_metrics"`` and clears it, so the
    parent can fold worker-side metrics — kernel counters, phase and
    stall cycles — into its own registry.  Only remote paths ship:
    on the serial path the job already accumulates into the parent
    registry directly, and a snapshot+clear would wipe unrelated
    counters.  Dispatches through the module global so tests can
    monkeypatch ``_execute_spec`` for every path.
    """
    apply_worker_fault(tuple(fault) if fault is not None else None)
    out = _execute_spec(spec)
    registry = get_registry()
    if registry.enabled:
        out["_metrics"] = registry.snapshot()
        registry.clear()
    profiler = get_profiler()
    if profiler.enabled and profiler.kernels:
        # Same contract as "_metrics": ship the delta home and reset,
        # so the parent's profiler aggregates every worker's phases.
        out["_profile"] = profiler.snapshot()
        profiler.clear()
    return out


#: Backwards-compatible alias (the pre-dist name of the pool entry).
_pool_execute = _worker_entry


def _absorb_metrics(data: Dict[str, Any]) -> Dict[str, Any]:
    """Merge a worker's shipped metrics/profile snapshots locally."""
    snap = data.pop("_metrics", None)
    if snap:
        get_registry().merge_snapshot(snap)
    prof = data.pop("_profile", None)
    if prof:
        get_profiler().merge_snapshot(prof)
    return data


# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """Structured result of one engine job.

    ``status`` is ``"ok"`` (simulated), ``"cached"`` (result cache
    hit), ``"resumed"`` (restored from a run journal), ``"failed"``
    (structured failure, see ``error``) or ``"skipped"`` (abandoned
    after an earlier failure under ``fail_fast``).
    """

    spec: JobSpec
    status: str  # "ok" | "cached" | "resumed" | "failed" | "skipped"
    summary: Optional[RunSummary] = None
    error: Optional[str] = None
    attempts: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether a usable summary is attached."""
        return self.status in ("ok", "cached", "resumed")


class BatchEngine:
    """Schedule, parallelize, cache, journal and observe a batch."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        tracer: Optional[Tracer] = None,
        journal=None,
        faults=None,
        fail_fast: bool = False,
        retry_budget: Optional[int] = None,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        deadline: Optional[float] = None,
        guard=None,
    ) -> None:
        """``timeout`` is per-job wall seconds (None = unbounded);
        ``retries`` counts extra attempts per job after a transient
        failure and ``retry_budget`` bounds total retries across the
        batch (None = unbounded); retries back off exponentially from
        ``backoff_base`` seconds, capped at ``backoff_max``.
        ``journal`` is a :class:`~repro.runtime.journal.RunJournal`:
        already-journaled specs are restored (status ``"resumed"``)
        and new completions are appended as they happen, making the
        batch resumable after an interrupt.  ``faults`` overrides the
        ``REPRO_FAULTS`` fault-injection plan (``None`` = resolve from
        the environment; unset = no hooks).  ``fail_fast`` stops
        scheduling after the first failure and marks the remainder
        ``"skipped"``.  ``tracer`` records one span per job lifecycle
        for Chrome trace export.  ``deadline`` is a batch-level
        wall-clock budget in seconds: once exhausted, not-yet-started
        jobs are shed as ``skipped`` with reason ``deadline``
        (journaled, so ``--resume`` completes them) and per-job
        timeouts clamp to the remaining budget.  ``guard`` overrides
        the ``REPRO_GUARD`` guard policy
        (:class:`~repro.runtime.guard.GuardPolicy`; ``None`` =
        resolve from the environment, unset = no guardrails and zero
        overhead)."""
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.timeout = timeout
        self.retries = max(0, retries)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = journal
        self.faults = faults if faults is not None else get_active_plan()
        self.fail_fast = fail_fast
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._budget_left = retry_budget
        self.guard = guard if guard is not None else get_active_guard()
        self.deadline_seconds = (
            deadline if deadline is not None
            else (self.guard.deadline_seconds
                  if self.guard is not None else None))
        #: The running batch's budget; armed by :meth:`run`, ``None``
        #: otherwise — every hot-path check is a single ``is None``.
        self._deadline: Optional[DeadlineBudget] = None

    # ------------------------------------------------------------------
    def _job_done(self, status: str, wall: float) -> None:
        """Per-job registry bookkeeping shared by all completion paths."""
        registry = get_registry()
        registry.counter("engine_jobs_total",
                         "Engine jobs by final status").inc(status=status)
        if status in ("ok", "failed"):  # others never entered the gauge
            registry.gauge("engine_jobs_in_flight",
                           "Jobs started but not finished").inc(-1)
            registry.histogram("engine_job_wall_seconds",
                               "Wall-clock seconds per job").observe(wall)

    def _job_started(self) -> None:
        get_registry().gauge("engine_jobs_in_flight",
                             "Jobs started but not finished").inc(1)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> List[JobOutcome]:
        """Execute a batch; outcomes align index-for-index with specs."""
        self._deadline = (DeadlineBudget(self.deadline_seconds)
                          if self.deadline_seconds is not None else None)
        outcomes: Dict[int, JobOutcome] = {}
        pending: List[Tuple[int, JobSpec]] = []
        for idx, spec in enumerate(specs):
            self.telemetry.emit("submitted", spec)
            if self.journal is not None:
                summary = self.journal.summary_for(spec)
                if summary is not None:
                    outcomes[idx] = JobOutcome(spec, "resumed", summary)
                    self.telemetry.emit("resumed", spec,
                                        cycles=summary.total_cycles)
                    self._job_done("resumed", 0.0)
                    continue
            if self.cache is not None:
                summary = self.cache.get(spec)
                if summary is not None:
                    outcomes[idx] = JobOutcome(spec, "cached", summary)
                    self.telemetry.emit("cached", spec,
                                        cycles=summary.total_cycles)
                    self._job_done("cached", 0.0)
                    if self.journal is not None:
                        self.journal.record(spec, summary)
                    continue
            pending.append((idx, spec))

        if pending:
            if self.jobs <= 1:
                self._run_serial(pending, outcomes)
            else:
                self._run_parallel(pending, outcomes)

        profiler = get_profiler()
        if profiler.enabled and profiler.kernels:
            # Before batch_summary: followers (repro tail) stop at the
            # summary event, so the profile must already be on disk.
            self.telemetry.emit("profile_summary", None,
                                **profiler.summary_payload())
        self.telemetry.emit_batch_summary(cache=self.cache)
        return [outcomes[i] for i in range(len(specs))]

    # ------------------------------------------------------------------
    def _record_success(self, idx: int, spec: JobSpec,
                        summary: RunSummary, attempts: int, wall: float,
                        outcomes: Dict[int, JobOutcome]) -> None:
        if self.cache is not None:
            self.cache.put(spec, summary)
        if self.journal is not None:
            self.journal.record(spec, summary)
        # Which engine ran is execution metadata, not job identity: it
        # lands on the in-memory summary and in telemetry, never in the
        # cache/journal payloads (engines are bit-identical).
        from repro.sim.engines import resolve_engine_name

        summary.engine = resolve_engine_name(spec.engine)
        outcomes[idx] = JobOutcome(spec, "ok", summary, None, attempts,
                                   wall)
        extra = {}
        if summary.digest_ledger:
            extra["digests"] = len(summary.digest_ledger)
        self.telemetry.emit("finished", spec,
                            cycles=summary.total_cycles,
                            wall=round(wall, 6), attempt=attempts,
                            engine=summary.engine,
                            **extra)
        self._job_done("ok", wall)

    def _record_failure(self, idx: int, spec: JobSpec, error: str,
                        attempts: int, wall: float,
                        outcomes: Dict[int, JobOutcome]) -> None:
        outcomes[idx] = JobOutcome(spec, "failed", None, error, attempts,
                                   wall)
        self.telemetry.emit("failed", spec, error=error, attempt=attempts)
        self._job_done("failed", wall)

    def _record_skipped(self, idx: int, spec: JobSpec,
                        outcomes: Dict[int, JobOutcome],
                        reason: str = "fail_fast") -> None:
        """Shed one job.  ``reason`` is ``"fail_fast"``, ``"deadline"``
        or a shutdown cause; deadline sheds are journaled so a
        ``--resume`` run completes the deferred work."""
        if reason == "fail_fast":
            error = "skipped after an earlier failure (fail_fast)"
        elif reason == "deadline":
            error = (f"skipped: batch deadline budget "
                     f"({self.deadline_seconds:g}s) exhausted")
        else:
            error = f"skipped: {reason}"
        outcomes[idx] = JobOutcome(spec, "skipped", None, error, 0, 0.0)
        if reason != "fail_fast" and self.journal is not None:
            self.journal.record_skipped(spec, reason)
        self.telemetry.emit("skipped", spec, reason=reason)
        self._job_done("skipped", 0.0)

    # ------------------------------------------------------------------
    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt + 1``."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_max,
                   self.backoff_base * (2.0 ** (attempt - 1)))

    def _take_retry(self, attempt: int) -> bool:
        """Whether another attempt is allowed (per-job and per-batch)."""
        if attempt > self.retries:
            return False
        if self._budget_left is not None:
            if self._budget_left <= 0:
                return False
            self._budget_left -= 1
        return True

    def _note_retry(self, spec: JobSpec, attempt: int,
                    reason: str) -> None:
        """Telemetry + metrics for one granted retry."""
        self.telemetry.emit("retried", spec, attempt=attempt + 1,
                            reason=reason)
        registry = get_registry()
        registry.counter(
            "engine_retries_total",
            "Jobs requeued after a transient failure"
        ).inc(reason=reason)
        # The retry re-enters the gauge when its fresh attempt starts.
        registry.gauge("engine_jobs_in_flight",
                       "Jobs started but not finished").inc(-1)

    def _sleep_backoff(self, attempt: int) -> None:
        delay = self._backoff_delay(attempt)
        if delay <= 0:
            return
        self.telemetry.emit("backoff", None, seconds=round(delay, 6))
        get_registry().counter(
            "engine_backoff_seconds_total",
            "Seconds slept backing off before retries").inc(delay)
        time.sleep(delay)

    # ------------------------------------------------------------------
    def _run_serial(self, pending, outcomes) -> None:
        abort = False
        for idx, spec in pending:
            if abort:
                self._record_skipped(idx, spec, outcomes)
                continue
            if self._deadline is not None and self._deadline.expired():
                self._record_skipped(idx, spec, outcomes,
                                     reason="deadline")
                continue
            attempt = 1
            while True:
                self.telemetry.emit("started", spec, attempt=attempt)
                self._job_started()
                start = time.perf_counter()
                with self.tracer.span(f"job:{spec.label}", cat="job",
                                      tid="engine") as span:
                    try:
                        if self.faults is not None:
                            apply_serial_fault(
                                self.faults.worker_fault(idx, attempt))
                        summary = RunSummary.from_dict(_execute_spec(spec))
                    except TransientError as exc:
                        if self._take_retry(attempt):
                            span.args["status"] = "retried"
                            self._note_retry(spec, attempt, "transient")
                            self._sleep_backoff(attempt)
                            attempt += 1
                            continue
                        span.args["status"] = "failed"
                        self._record_failure(
                            idx, spec, f"{type(exc).__name__}: {exc}",
                            attempt, time.perf_counter() - start,
                            outcomes)
                        abort = self.fail_fast
                        break
                    except Exception as exc:  # noqa: BLE001 - structured
                        span.args["status"] = "failed"
                        self._record_failure(
                            idx, spec, f"{type(exc).__name__}: {exc}",
                            attempt, time.perf_counter() - start,
                            outcomes)
                        abort = self.fail_fast
                        break
                    span.args["status"] = "ok"
                    span.args["cycles"] = summary.total_cycles
                    self._record_success(idx, spec, summary, attempt,
                                         time.perf_counter() - start,
                                         outcomes)
                    break

    # ------------------------------------------------------------------
    def _run_parallel(self, pending, outcomes) -> None:
        queue: List[Tuple[int, JobSpec, int]] = [
            (idx, spec, 1) for idx, spec in pending
        ]
        round_no = 0
        abort = False
        while queue and not abort:
            round_no += 1
            if round_no > 1:
                # Everything queued here is a transient retry; back
                # off once per round, scaled by how many rounds the
                # batch has already burned.
                self._sleep_backoff(round_no - 1)
            batch, queue = queue, []
            if self._deadline is not None and self._deadline.expired():
                # Budget gone before this round started: shed, never
                # spawn a pool the batch has no time to wait on.
                for idx, spec, _attempt in batch:
                    self._record_skipped(idx, spec, outcomes,
                                         reason="deadline")
                continue
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(batch))
            )
            futures = []
            try:
                for idx, spec, attempt in batch:
                    self.telemetry.emit("started", spec, attempt=attempt)
                    self._job_started()
                    fault = (self.faults.worker_fault(idx, attempt)
                             if self.faults is not None else None)
                    futures.append(
                        (idx, spec, attempt, time.perf_counter(),
                         pool.submit(_worker_entry, spec, fault))
                    )
                for idx, spec, attempt, start, future in futures:
                    if abort:
                        future.cancel()
                        get_registry().gauge(
                            "engine_jobs_in_flight",
                            "Jobs started but not finished").inc(-1)
                        self._record_skipped(idx, spec, outcomes)
                        continue
                    timeout = self.timeout
                    if self._deadline is not None:
                        timeout = self._deadline.clamp(timeout)
                    try:
                        data = _absorb_metrics(
                            future.result(timeout=timeout))
                        wall = time.perf_counter() - start
                        self.tracer.add_span(
                            f"job:{spec.label}", "job",
                            self.tracer.now_us() - wall * 1e6,
                            wall * 1e6, tid="engine", status="ok")
                        self._record_success(
                            idx, spec, RunSummary.from_dict(data),
                            attempt, wall, outcomes)
                    except FutureTimeoutError:
                        future.cancel()
                        if (self._deadline is not None
                                and self._deadline.expired()):
                            # The batch budget ran out, not the job's
                            # own timeout: shed rather than blame it.
                            get_registry().gauge(
                                "engine_jobs_in_flight",
                                "Jobs started but not finished"
                            ).inc(-1)
                            self._record_skipped(idx, spec, outcomes,
                                                 reason="deadline")
                            continue
                        self._record_failure(
                            idx, spec,
                            f"timed out after {self.timeout}s", attempt,
                            time.perf_counter() - start, outcomes)
                        abort = abort or self.fail_fast
                    except BrokenProcessPool:
                        # The worker process died.  Retry on a fresh
                        # pool; siblings caught in the same pool
                        # collapse are requeued for free.
                        if self._take_retry(attempt):
                            self._note_retry(spec, attempt, "crash")
                            queue.append((idx, spec, attempt + 1))
                        else:
                            self._record_failure(
                                idx, spec,
                                "worker process crashed", attempt,
                                time.perf_counter() - start, outcomes)
                            abort = abort or self.fail_fast
                    except TransientError as exc:
                        # Raised inside the worker and pickled back,
                        # but explicitly marked worth retrying.
                        if self._take_retry(attempt):
                            self._note_retry(spec, attempt, "transient")
                            queue.append((idx, spec, attempt + 1))
                        else:
                            self._record_failure(
                                idx, spec,
                                f"{type(exc).__name__}: {exc}", attempt,
                                time.perf_counter() - start, outcomes)
                            abort = abort or self.fail_fast
                    except Exception as exc:  # noqa: BLE001
                        # Raised *inside* the worker and pickled back:
                        # deterministic, so fail without a retry.
                        self._record_failure(
                            idx, spec, f"{type(exc).__name__}: {exc}",
                            attempt, time.perf_counter() - start,
                            outcomes)
                        abort = abort or self.fail_fast
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        # A fail-fast abort abandons anything still queued for retry.
        for idx, spec, _attempt in queue:
            self._record_skipped(idx, spec, outcomes)


# ----------------------------------------------------------------------
def run_specs(
    specs: Sequence[JobSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    timeout: Optional[float] = None,
) -> List[JobOutcome]:
    """One-shot convenience wrapper around :class:`BatchEngine`."""
    return BatchEngine(jobs=jobs, cache=cache, telemetry=telemetry,
                       timeout=timeout).run(specs)


def raise_on_failures(outcomes: Sequence[JobOutcome]) -> None:
    """Raise one :class:`ReproError` naming every failed job."""
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    details = "; ".join(
        f"{o.spec.label}: {o.error}" for o in failed[:5]
    )
    more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
    raise ReproError(
        f"{len(failed)} of {len(outcomes)} jobs failed: {details}{more}"
    )
