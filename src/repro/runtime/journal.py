"""Append-only run journal: what a batch has already finished.

A journal is a JSONL file with one line per completed job — the spec's
content hash plus the full :class:`~repro.runtime.cache.RunSummary`
dict — appended *atomically* (one ``os.write`` on an ``O_APPEND``
descriptor) the moment the job succeeds.  An interrupted run (SIGINT,
crash, OOM-kill) therefore leaves a journal of everything it finished,
and a ``--resume`` rerun restores those summaries without touching the
simulator or even the result cache: zero re-simulation of completed
work.

Beyond completions, the journal doubles as the distributed fleet's
*work ledger* (:mod:`repro.dist`): ``lease`` records mark a job handed
to a worker (worker id, attempt, absolute deadline) and ``reclaim``
records mark a lease taken back (expiry, disconnect, transient retry).
Records carry a ``type`` field — absent or ``"complete"`` for
completions, so journals written before leases existed load unchanged.
Because every record is one ``O_APPEND`` write, concurrent writers
(a coordinator and its bookkeeping threads) interleave whole lines in
a total order, and any interleaving of lease/complete/reclaim lines
loads to a consistent ledger: completions always win, and a hash's
active lease is decided by the last lease/reclaim line in file order.

The journal complements the result cache rather than duplicating it:
the cache is a global content-addressed store with eviction and
versioning; the journal is the durable progress record of *one run*,
valid even when caching is disabled or an entry was torn mid-write.

Journals tolerate their own failure modes: a torn final line (the
writer died mid-append under a pre-atomic writer, or the filesystem
lied) is counted and skipped on load, lines from a different simulator
version are ignored, and :meth:`RunJournal.rotate` compacts duplicate
completions into a fresh file via an atomic ``os.replace`` (lease and
reclaim lines are dropped by rotation — they describe in-flight state,
not durable results).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.runtime.cache import RunSummary
from repro.sim import SIMULATOR_VERSION

#: Bump when the journal line layout changes.
JOURNAL_SCHEMA = 1

#: Record types a journal line may carry (absent = ``"complete"``).
RECORD_TYPES = ("complete", "lease", "reclaim", "skipped")


def append_jsonl(path, record: Dict[str, Any]) -> None:
    """Append one JSON object as a single atomic ``os.write``.

    POSIX guarantees ``O_APPEND`` writes of modest size are not
    interleaved, and issuing the entire line (payload + newline) in
    one unbuffered syscall means a process killed at any instant
    leaves either the whole line or nothing — never a torn prefix for
    a follower to buffer forever.
    """
    data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


class RunJournal:
    """Durable record of completed jobs, keyed by spec content hash.

    Construct, optionally :meth:`load` an existing file (``--resume``),
    then hand it to a :class:`~repro.runtime.engine.BatchEngine` as
    ``journal=``: the engine skips (status ``"resumed"``) every spec
    whose hash is already journaled and appends each new completion.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._completed: Dict[str, Dict[str, Any]] = {}
        self._leases: Dict[str, Dict[str, Any]] = {}
        self._skipped: Dict[str, str] = {}
        self._appended = 0
        self.bad_lines = 0
        self.stale_lines = 0
        self.unknown_lines = 0
        self.lease_lines = 0
        self.reclaim_lines = 0
        self.skipped_lines = 0

    @staticmethod
    def _hash_of(spec_or_hash) -> str:
        """Accept a spec (anything with ``content_hash``) or a hash."""
        if isinstance(spec_or_hash, str):
            return spec_or_hash
        return spec_or_hash.content_hash()

    # ------------------------------------------------------------------
    def load(self) -> int:
        """Read the journal from disk; returns entries restored.

        Torn/garbled lines are counted in :attr:`bad_lines` and
        skipped; lines written by a different simulator version are
        counted in :attr:`stale_lines` and skipped (their results
        would no longer be valid to resume from).  Record kinds this
        reader does not know — written by a newer build sharing the
        journal — are counted in :attr:`unknown_lines` and skipped
        cleanly rather than treated as corruption, so forward-
        compatible record types (provenance digests, say) can ride in
        any journal without stranding older readers.  Lease and
        reclaim lines fold into the lease ledger
        (:meth:`active_leases`) in file order; a completion for a hash
        always clears — and permanently shadows — any lease on it.
        """
        self._completed.clear()
        self._leases.clear()
        self._skipped.clear()
        self.bad_lines = 0
        self.stale_lines = 0
        self.unknown_lines = 0
        self.lease_lines = 0
        self.reclaim_lines = 0
        self.skipped_lines = 0
        if not self.path.exists():
            return 0
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal lines must be objects")
                if (record.get("schema") != JOURNAL_SCHEMA
                        or record.get("sim") != SIMULATOR_VERSION):
                    self.stale_lines += 1
                    continue
                kind = record.get("type", "complete")
                if kind == "complete":
                    self._completed[record["hash"]] = record["summary"]
                    self._leases.pop(record["hash"], None)
                    self._skipped.pop(record["hash"], None)
                elif kind == "skipped":
                    # A shed job (deadline/shutdown): recorded for the
                    # failure report, *not* restored — a resume run
                    # re-attempts the deferred work.
                    if record["hash"] not in self._completed:
                        self._skipped[record["hash"]] = str(
                            record.get("reason", ""))
                    self.skipped_lines += 1
                elif kind == "lease":
                    if not isinstance(record["worker"], str):
                        raise ValueError("lease worker must be a string")
                    self._leases[record["hash"]] = record
                    self.lease_lines += 1
                elif kind == "reclaim":
                    self._leases.pop(record["hash"], None)
                    self.reclaim_lines += 1
                else:
                    self.unknown_lines += 1
            except (ValueError, KeyError, TypeError):
                self.bad_lines += 1
        return len(self._completed)

    def reset(self) -> None:
        """Forget everything and truncate the file (fresh run)."""
        self._completed.clear()
        self._leases.clear()
        self._skipped.clear()
        self._appended = 0
        if self.path.exists():
            self.path.unlink()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._completed)

    def __contains__(self, spec) -> bool:
        return spec.content_hash() in self._completed

    def hashes(self):
        """The set of journaled content hashes (for tests and CI)."""
        return set(self._completed)

    def summary_for(self, spec) -> Optional[RunSummary]:
        """The journaled summary for ``spec``, or ``None``."""
        data = self._completed.get(spec.content_hash())
        if data is None:
            return None
        try:
            return RunSummary.from_dict(data, from_cache=True)
        except (ValueError, KeyError, TypeError):
            # A journaled summary that no longer deserializes is as
            # good as absent; the job simply re-runs.
            return None

    def record(self, spec, summary: RunSummary) -> None:
        """Journal one completion (idempotent per content hash)."""
        key = spec.content_hash()
        if key in self._completed:
            return
        data = summary.to_dict()
        self._completed[key] = data
        self._leases.pop(key, None)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        append_jsonl(self.path, {
            "schema": JOURNAL_SCHEMA,
            "sim": SIMULATOR_VERSION,
            "hash": key,
            "label": spec.label,
            "time": round(time.time(), 6),
            "summary": data,
        })
        self._appended += 1

    # ------------------------------------------------------------------
    def record_lease(self, spec_or_hash, worker: str,
                     lease_seconds: float, attempt: int = 1) -> None:
        """Journal a job handed to ``worker`` until an absolute deadline.

        The lease is the fleet's durable claim record: a coordinator
        killed mid-batch leaves every outstanding lease on disk, and a
        ``--resume`` load reports them (:meth:`active_leases`) while
        still re-running the jobs — a lease is a claim, never a result.
        """
        key = self._hash_of(spec_or_hash)
        record = {
            "schema": JOURNAL_SCHEMA,
            "sim": SIMULATOR_VERSION,
            "type": "lease",
            "hash": key,
            "worker": worker,
            "attempt": int(attempt),
            "deadline": round(time.time() + lease_seconds, 6),
            "time": round(time.time(), 6),
        }
        self._leases[key] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        append_jsonl(self.path, record)
        self._appended += 1
        self.lease_lines += 1

    def record_reclaim(self, spec_or_hash, worker: str,
                       reason: str) -> None:
        """Journal a lease taken back (expired/disconnect/transient)."""
        key = self._hash_of(spec_or_hash)
        self._leases.pop(key, None)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        append_jsonl(self.path, {
            "schema": JOURNAL_SCHEMA,
            "sim": SIMULATOR_VERSION,
            "type": "reclaim",
            "hash": key,
            "worker": worker,
            "reason": reason,
            "time": round(time.time(), 6),
        })
        self._appended += 1
        self.reclaim_lines += 1

    def record_skipped(self, spec_or_hash, reason: str,
                       label: str = "") -> None:
        """Journal a job the run *shed* (deadline exhausted, shutdown).

        A skip is a deferral, never a result: on ``--resume`` the job
        re-runs.  The record exists so an interrupted or deadline-cut
        batch leaves a complete account of every job's fate on disk.
        """
        key = self._hash_of(spec_or_hash)
        self._skipped[key] = reason
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": JOURNAL_SCHEMA,
            "sim": SIMULATOR_VERSION,
            "type": "skipped",
            "hash": key,
            "reason": reason,
            "time": round(time.time(), 6),
        }
        if label or not isinstance(spec_or_hash, str):
            record["label"] = label or spec_or_hash.label
        append_jsonl(self.path, record)
        self._appended += 1
        self.skipped_lines += 1

    def skipped(self) -> Dict[str, str]:
        """Hash -> shed reason, for jobs deferred but never completed."""
        return {key: reason for key, reason in self._skipped.items()
                if key not in self._completed}

    def active_leases(self) -> Dict[str, Dict[str, Any]]:
        """Hash -> lease record for leases not completed or reclaimed."""
        return {key: dict(record)
                for key, record in self._leases.items()
                if key not in self._completed}

    def lease_holder(self, spec_or_hash) -> Optional[str]:
        """The worker currently holding a lease on the job, if any."""
        record = self.active_leases().get(self._hash_of(spec_or_hash))
        return record["worker"] if record is not None else None

    # ------------------------------------------------------------------
    def rotate(self) -> int:
        """Atomically compact the file to one line per completion.

        Repeated interrupt/resume cycles append duplicate or stale
        lines; rotation rewrites the current in-memory state to a
        sibling temp file and ``os.replace``s it over the journal, so
        a crash mid-rotation leaves the old file intact.  Returns the
        number of lines written.
        """
        if not self._completed:
            self.reset()
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".rotate")
        with tmp.open("w") as handle:
            for key in sorted(self._completed):
                handle.write(json.dumps({
                    "schema": JOURNAL_SCHEMA,
                    "sim": SIMULATOR_VERSION,
                    "hash": key,
                    "time": round(time.time(), 6),
                    "summary": self._completed[key],
                }, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return len(self._completed)

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for telemetry summaries and the CLI."""
        return {
            "path": str(self.path),
            "entries": len(self._completed),
            "appended": self._appended,
            "bad_lines": self.bad_lines,
            "stale_lines": self.stale_lines,
            "unknown_lines": self.unknown_lines,
            "active_leases": len(self.active_leases()),
            "lease_lines": self.lease_lines,
            "reclaim_lines": self.reclaim_lines,
            "skipped": len(self.skipped()),
            "skipped_lines": self.skipped_lines,
        }
