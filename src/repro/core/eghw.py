"""Edge-Generating HardWare (EGHW) baseline — Case Study 1 (Fig. 18).

EGHW models the SCU / GraphPEG family: a per-core accelerator that takes
vertex ids from a shared-memory buffer, *itself* reads graph topology and
edge information from the memory hierarchy, and writes complete edge
records back to a shared-memory buffer for the GPU to consume.

The decisive difference from Weaver: EGHW performs its own memory reads
serially on its private timeline, so it cannot hide memory latency
behind warp-level parallelism, and it needs extra shared-memory traffic
to stage the generated edge records — the two effects the paper blames
for SparseWeaver's 3.64x advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.config import GPUConfig
from repro.sim.instructions import Op
from repro.sim.memory import MemoryHierarchy, Region


@dataclass
class EdgeBatch:
    """One warp-wide batch of generated edge records."""

    vids: np.ndarray
    eids: np.ndarray
    others: np.ndarray   # opposite endpoint of each edge
    weights: np.ndarray
    mask: np.ndarray

    @property
    def exhausted(self) -> bool:
        """True when the batch carries no work (unit drained)."""
        return not bool(self.mask.any())


class EGHWUnit:
    """Per-core edge-generating hardware with a serial memory timeline."""

    def __init__(
        self,
        core_id: int,
        config: GPUConfig,
        memory: MemoryHierarchy,
        row_ptr_region: Region,
        col_region: Region,
        weight_region: Region,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.memory = memory
        self.row_ptr_region = row_ptr_region
        self.col_region = col_region
        self.weight_region = weight_region
        self.row_ptr = row_ptr
        self.col_idx = col_idx
        self.weights = weights
        self.lanes = config.threads_per_warp
        self._inputs: List[int] = []
        self._records: List[Tuple[int, int, int, float]] = []
        self._record_ready: List[int] = []
        self._next_input = 0
        self._unit_time = 0
        self._free_at = 0
        self.edges_generated = 0

    # ------------------------------------------------------------------
    # Simulator unit protocol
    # ------------------------------------------------------------------
    def handle(
        self, op: Op, warp_slot: int, now: int, payload: Any
    ) -> Tuple[int, Any]:
        """Serve EGHW_PUSH / EGHW_FETCH; returns ``(done_time, response)``."""
        start = max(now, self._free_at)
        if op == Op.EGHW_PUSH:
            # GPU writes vertex ids into the unit's shared-memory buffer.
            vids = [int(v) for v in payload]
            self._inputs.extend(vids)
            done = start + self.config.shmem_latency
            self._unit_time = max(self._unit_time, done)
            self._free_at = done
            return done, None
        if op == Op.EGHW_FETCH:
            batch, ready = self._fetch(start)
            done = max(start, ready) + self.config.shmem_latency
            self._free_at = done
            return done, batch
        raise SimulationError(f"EGHWUnit cannot handle {op.name}")

    # ------------------------------------------------------------------
    def _produce_one(self) -> bool:
        """Generate records for the next input vertex; False when drained.

        The unit keeps ``eghw_mlp`` memory requests in flight (a small
        fixed MSHR budget), so its serial timeline advances by
        ``latency / mlp`` per access — better than fully serial, but far
        from the GPU pipeline's warp-level hiding, which is the paper's
        point in Case Study 1.
        """
        cfg = self.config
        mlp = max(1, cfg.eghw_mlp)
        while self._next_input < len(self._inputs):
            vid = self._inputs[self._next_input]
            self._next_input += 1
            # Shared-memory read of the vid buffer.
            self._unit_time += cfg.shmem_latency
            # Topology read: row_ptr[vid], row_ptr[vid+1].
            lat, _ = self.memory.access(
                self.core_id,
                self.row_ptr_region,
                np.asarray([vid, vid + 1], dtype=np.int64),
                now=self._unit_time,
            )
            self._unit_time += -(-lat // mlp)
            start, end = int(self.row_ptr[vid]), int(self.row_ptr[vid + 1])
            if start == end:
                continue
            # Edge-information reads, one warp-width chunk at a time.
            for chunk_start in range(start, end, self.lanes):
                chunk = np.arange(
                    chunk_start, min(chunk_start + self.lanes, end),
                    dtype=np.int64,
                )
                lat, _ = self.memory.access(self.core_id, self.col_region,
                                            chunk, now=self._unit_time)
                self._unit_time += -(-lat // mlp)
                lat, _ = self.memory.access(
                    self.core_id, self.weight_region, chunk,
                    now=self._unit_time,
                )
                self._unit_time += -(-lat // mlp)
                # Stage each record into the shared-memory output buffer.
                self._unit_time += cfg.shmem_latency
                for eid in chunk.tolist():
                    self._records.append(
                        (vid, eid, int(self.col_idx[eid]),
                         float(self.weights[eid]))
                    )
                    self._record_ready.append(self._unit_time)
                    self.edges_generated += 1
            return True
        return False

    def _fetch(self, now: int) -> Tuple[EdgeBatch, int]:
        """Return up to one warp of records and their availability time."""
        self._unit_time = max(self._unit_time, now)
        while (
            len(self._records) < self.lanes
            and self._next_input < len(self._inputs)
        ):
            self._produce_one()
        take = min(self.lanes, len(self._records))
        vids = np.full(self.lanes, -1, dtype=np.int64)
        eids = np.full(self.lanes, -1, dtype=np.int64)
        others = np.full(self.lanes, -1, dtype=np.int64)
        weights = np.zeros(self.lanes, dtype=np.float64)
        ready = now
        for i in range(take):
            vid, eid, other, w = self._records[i]
            vids[i] = vid
            eids[i] = eid
            others[i] = other
            weights[i] = w
            ready = max(ready, self._record_ready[i])
        del self._records[:take]
        del self._record_ready[:take]
        mask = vids >= 0
        return EdgeBatch(vids, eids, others, weights, mask), ready

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear buffers for a new epoch."""
        self._inputs.clear()
        self._records.clear()
        self._record_ready.clear()
        self._next_input = 0

    @property
    def drained(self) -> bool:
        """True when every pushed vertex's edges have been fetched."""
        return not self._records and self._next_input >= len(self._inputs)
