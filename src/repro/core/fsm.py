"""The Weaver finite state machine (paper Fig. 6).

State roles, matching the figure:

* ``S0 INIT`` — idle; entered on reset / new registration epoch.
* ``S1 LOAD_FIRST`` — load the first ST entry into the CED buffer.
* ``S2 DECODE`` — fill Output Data (OD) slots from the CED.
* ``S3 FETCH`` — advance the ST scan cursor (low-degree path
  ``S3 -> S4 -> S2``).
* ``S4 UPDATE_CED`` — latch the fetched entry into the CED.
* ``S5 UPDATE_DT`` — OD full: write the warp's EID row to the DT
  (high-degree entries refill OD repeatedly via ``S5 -> S6 -> S2``).
* ``S6 WAIT`` — wait for the next decode request.
* ``S7 DRAIN`` — ST exhausted: flush a partial OD.
* ``S8 END`` — all work distributed; requests return -1 rows.

Each visited state costs one FSM cycle; ST reads additionally cost the
table-read latency, charged by the timed wrapper in
:mod:`repro.core.unit` (this module is pure logic so tests can replay
the paper's worked example cycle by cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Set

import numpy as np

from repro.errors import WeaverError
from repro.core.tables import STEntry, SparseWorkloadTable


class WeaverState(Enum):
    """FSM states S0..S8 of Fig. 6."""

    INIT = "S0"
    LOAD_FIRST = "S1"
    DECODE = "S2"
    FETCH = "S3"
    UPDATE_CED = "S4"
    UPDATE_DT = "S5"
    WAIT = "S6"
    DRAIN = "S7"
    END = "S8"


@dataclass
class DecodeResult:
    """What one ``WEAVER_DEC_ID`` request produced.

    ``vids``/``eids`` are lane-wide arrays padded with -1; ``mask`` marks
    lanes holding valid work (the hardware thread-activation clue).
    ``fsm_cycles`` counts states visited and ``st_reads`` counts ST
    fetches — the timed unit converts both into latency.
    """

    vids: np.ndarray
    eids: np.ndarray
    mask: np.ndarray
    fsm_cycles: int
    st_reads: int
    states: List[WeaverState] = field(default_factory=list)

    @property
    def exhausted(self) -> bool:
        """True when every lane returned -1 (distribution-loop exit)."""
        return not bool(self.mask.any())

    @property
    def work_count(self) -> int:
        """Number of valid lanes."""
        return int(self.mask.sum())


class _CED:
    """Current Entry Data buffer: the in-flight ST entry."""

    __slots__ = ("vid", "cursor", "remaining")

    def __init__(self, entry: STEntry) -> None:
        self.vid = entry.vid
        self.cursor = entry.loc
        self.remaining = entry.degree

    def take(self, count: int) -> List[tuple]:
        taken = [
            (self.vid, self.cursor + i) for i in range(min(count, self.remaining))
        ]
        self.cursor += len(taken)
        self.remaining -= len(taken)
        return taken


class WeaverFSM:
    """Pure-logic Weaver FSM over an ST scan.

    Zero-degree entries (filtered vertices, or vertices hit by
    ``WEAVER_SKIP`` before their entry is reached) are skipped through a
    valid bitmap rather than the full S3/S4 fetch path:
    ``zero_skip_width`` entries of the bitmap are scanned per cycle, so
    a frontier algorithm whose registration is mostly degree-zero (BFS
    with a small frontier) does not pay a full entry fetch per idle
    vertex.
    """

    #: Bitmap-scan width: zero entries skipped per FSM cycle.
    zero_skip_width = 32

    def __init__(self, table: SparseWorkloadTable, lanes: int) -> None:
        if lanes < 1:
            raise WeaverError("Weaver needs at least one lane")
        self.table = table
        self.lanes = lanes
        self.state = WeaverState.INIT
        self._entries: List[STEntry] = []
        self._scan_pos = 0
        self._ced: Optional[_CED] = None
        self._od: List[tuple] = []
        self._skipped: Set[int] = set()
        self.total_fsm_cycles = 0
        self.total_st_reads = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Back to S0 (called when a new registration epoch begins)."""
        self.state = WeaverState.INIT
        self._entries = []
        self._scan_pos = 0
        self._ced = None
        self._od = []
        self._skipped = set()

    def skip(self, vid: int) -> None:
        """``WEAVER_SKIP``: stop emitting work items for ``vid``.

        Effective immediately on the CED if it currently holds ``vid``
        (the supernode mid-decode case the paper motivates with BFS).
        """
        self._skipped.add(vid)
        if self._ced is not None and self._ced.vid == vid:
            self._ced.remaining = 0

    @property
    def exhausted(self) -> bool:
        """True once the FSM has reached S8."""
        return self.state == WeaverState.END

    # ------------------------------------------------------------------
    def decode(self) -> DecodeResult:
        """Serve one decode request: run states until OD is full or the
        scan ends, then emit the OD as a lane-wide result."""
        states: List[WeaverState] = []
        st_reads = 0
        bitmap_cycles = 0

        def visit(state: WeaverState) -> None:
            nonlocal st_reads
            self.state = state
            states.append(state)
            if state in (WeaverState.LOAD_FIRST, WeaverState.FETCH):
                st_reads += 1

        def skip_zeros() -> None:
            # Advance the scan cursor over zero-degree / skipped entries
            # via the valid bitmap (zero_skip_width entries per cycle).
            nonlocal bitmap_cycles
            skipped = 0
            while self._scan_pos < len(self._entries):
                entry = self._entries[self._scan_pos]
                if entry.degree > 0 and entry.vid not in self._skipped:
                    break
                self._scan_pos += 1
                skipped += 1
            if skipped:
                bitmap_cycles += -(-skipped // self.zero_skip_width)

        if self.state == WeaverState.INIT:
            self._entries = list(self.table.scan())
            self._scan_pos = 0
            skip_zeros()
            visit(WeaverState.LOAD_FIRST)
            if self._scan_pos < len(self._entries):
                self._ced = _CED(self._entries[self._scan_pos])
                self._scan_pos += 1
                self._apply_skip()
            else:
                self._ced = None
        elif self.state == WeaverState.WAIT:
            pass  # resume with the current CED at S2
        elif self.state == WeaverState.END:
            return self._finish(states, st_reads, 0, end=True)

        # Decode loop: S2 with refills (S3/S4) until OD full or drained.
        while True:
            visit(WeaverState.DECODE)
            if self._ced is not None and self._ced.remaining > 0:
                self._od.extend(self._ced.take(self.lanes - len(self._od)))
            if len(self._od) >= self.lanes:
                visit(WeaverState.UPDATE_DT)
                visit(WeaverState.WAIT)
                return self._finish(states, st_reads, bitmap_cycles,
                                    end=False)
            skip_zeros()
            if self._scan_pos < len(self._entries):
                visit(WeaverState.FETCH)
                self._ced = _CED(self._entries[self._scan_pos])
                self._scan_pos += 1
                self._apply_skip()
                visit(WeaverState.UPDATE_CED)
                continue
            # ST exhausted: drain the partial OD and end.
            visit(WeaverState.DRAIN)
            visit(WeaverState.END)
            return self._finish(states, st_reads, bitmap_cycles, end=True)

    # ------------------------------------------------------------------
    def _apply_skip(self) -> None:
        if self._ced is not None and self._ced.vid in self._skipped:
            self._ced.remaining = 0

    def _finish(
        self, states: List[WeaverState], st_reads: int,
        bitmap_cycles: int, end: bool
    ) -> DecodeResult:
        vids = np.full(self.lanes, -1, dtype=np.int64)
        eids = np.full(self.lanes, -1, dtype=np.int64)
        for i, (vid, eid) in enumerate(self._od):
            vids[i] = vid
            eids[i] = eid
        mask = vids >= 0
        self._od = []
        cycles = len(states) + bitmap_cycles
        if end and not states:
            # Post-end request: one cycle to answer with -1s.
            cycles = 1
        self.total_fsm_cycles += cycles
        self.total_st_reads += st_reads
        return DecodeResult(
            vids=vids,
            eids=eids,
            mask=mask,
            fsm_cycles=cycles,
            st_reads=st_reads,
            states=states,
        )
