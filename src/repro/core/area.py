"""Analytic FPGA area model (Table IV / Fig. 16).

This environment cannot run Quartus synthesis, so we model the area the
way an architect sizes a unit before synthesis — structural bit counts
for the registers, a logic estimate for the FSM — and *calibrate* the
model so the paper's default configuration (32 lanes, 512-entry tables,
32-bit ids, Stratix 10 target) lands exactly on the published numbers:

* 678 dedicated logic registers per core for the ST/DT access logic
  (0.045% of the core's register budget),
* 3,109 extra ALMs for the first core and 11,639 for 16 cores
  (2.96% / 2.01%), with zero block-memory / RAM / DSP increase because
  both tables live in existing shared memory.

The per-core ALM increment shrinks beyond the first core (synthesis
shares decoder logic), which we capture with the linear fit through the
paper's two data points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError

# Published anchors (Table IV and Section V-F).
PAPER_REGISTERS_PER_CORE = 678
PAPER_REGISTER_PCT = 0.045  # percent
PAPER_ALMS_1CORE_BASE = 105_094
PAPER_ALMS_1CORE_SW = 108_203
PAPER_ALMS_16CORE_BASE = 580_332
PAPER_ALMS_16CORE_SW = 591_971
PAPER_RTL_LINES_ADDED = 251
PAPER_RTL_LINES_BASE = 184_449

_ALM_OVERHEAD_1 = PAPER_ALMS_1CORE_SW - PAPER_ALMS_1CORE_BASE      # 3109
_ALM_OVERHEAD_16 = PAPER_ALMS_16CORE_SW - PAPER_ALMS_16CORE_BASE   # 11639
_ALM_SLOPE = (_ALM_OVERHEAD_16 - _ALM_OVERHEAD_1) / 15.0
_ALM_INTERCEPT = _ALM_OVERHEAD_1 - _ALM_SLOPE
_BASE_SLOPE = (PAPER_ALMS_16CORE_BASE - PAPER_ALMS_1CORE_BASE) / 15.0
_BASE_INTERCEPT = PAPER_ALMS_1CORE_BASE - _BASE_SLOPE
# Implied total register budget of one core: 678 regs == 0.045 %.
_CORE_REGISTER_BUDGET = PAPER_REGISTERS_PER_CORE / (PAPER_REGISTER_PCT / 100.0)


@dataclass(frozen=True)
class AreaReport:
    """One Table IV row pair: base vs with-SparseWeaver resources."""

    num_cores: int
    base_alms: int
    sparseweaver_alms: int
    registers_added: int
    register_pct_increase: float
    alm_pct_increase: float
    block_memory_pct_increase: float = 0.0
    ram_pct_increase: float = 0.0
    dsp_pct_increase: float = 0.0

    @property
    def alms_added(self) -> int:
        """Extra ALMs attributable to SparseWeaver."""
        return self.sparseweaver_alms - self.base_alms


class WeaverAreaModel:
    """Structural + calibrated area estimate of one Weaver instance."""

    def __init__(
        self,
        lanes: int = 32,
        table_entries: int = 512,
        id_bits: int = 32,
    ) -> None:
        if lanes < 1 or table_entries < 1 or id_bits < 1:
            raise ConfigError("lanes, table_entries and id_bits must be >= 1")
        self.lanes = lanes
        self.table_entries = table_entries
        self.id_bits = id_bits

    # ------------------------------------------------------------------
    # Structural register count (then calibrated to the paper anchor)
    # ------------------------------------------------------------------
    def structural_register_bits(self) -> Dict[str, int]:
        """Register bits per structure (tables themselves are in shared
        memory and cost zero registers — the paper's key area trick)."""
        ptr_bits = max(1, math.ceil(math.log2(self.table_entries)))
        return {
            "ced": 3 * self.id_bits,              # vid, cursor, remaining
            "od_valid": self.lanes,               # per-lane valid bits
            "scan_pointer": ptr_bits,
            "fill_pointer": max(1, math.ceil(math.log2(self.lanes))) + 1,
            "fsm_state": 4,                       # 9 states -> 4 bits
            "request_queue": 2 * max(
                1, math.ceil(math.log2(self.lanes))
            ),
            "control": 32,                        # misc handshake/valid
        }

    def registers_per_core(self) -> int:
        """Dedicated logic registers, calibrated to 678 at the default
        (32 lanes / 512 entries / 32-bit ids) configuration."""
        bits = sum(self.structural_register_bits().values())
        default_bits = sum(
            WeaverAreaModel(32, 512, 32).structural_register_bits().values()
        )
        return max(1, round(PAPER_REGISTERS_PER_CORE * bits / default_bits))

    def alm_overhead(self, num_cores: int) -> int:
        """Extra ALMs for ``num_cores`` cores (linear fit through the
        paper's 1-core and 16-core measurements, scaled by lane count)."""
        if num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        base = _ALM_INTERCEPT + _ALM_SLOPE * num_cores
        lane_scale = self.lanes / 32.0
        return max(1, round(base * (0.5 + 0.5 * lane_scale)))

    # ------------------------------------------------------------------
    def report(self, num_cores: int = 1) -> AreaReport:
        """Produce one Table IV row pair for ``num_cores`` cores."""
        if num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        base = round(_BASE_INTERCEPT + _BASE_SLOPE * num_cores)
        overhead = self.alm_overhead(num_cores)
        regs = self.registers_per_core()
        return AreaReport(
            num_cores=num_cores,
            base_alms=base,
            sparseweaver_alms=base + overhead,
            registers_added=regs,
            register_pct_increase=100.0 * regs / _CORE_REGISTER_BUDGET,
            alm_pct_increase=100.0 * overhead / base,
        )

    def table_rows(self, core_counts=(1, 16)) -> List[AreaReport]:
        """Table IV as a list of rows (default: the paper's 1 and 16)."""
        return [self.report(n) for n in core_counts]

    # ------------------------------------------------------------------
    @staticmethod
    def rtl_line_overhead() -> float:
        """Percent SystemVerilog line-count increase (Section V-F)."""
        return 100.0 * PAPER_RTL_LINES_ADDED / PAPER_RTL_LINES_BASE

    def utilization_summary(self, num_cores: int = 1) -> str:
        """Textual stand-in for the Fig. 16 utilization diagram."""
        rep = self.report(num_cores)
        bar_base = "#" * max(1, rep.base_alms // 20_000)
        bar_sw = "#" * max(1, rep.sparseweaver_alms // 20_000)
        return "\n".join(
            [
                f"{num_cores}-core default        [{bar_base}] "
                f"{rep.base_alms} ALMs",
                f"{num_cores}-core w/ SparseWeaver [{bar_sw}] "
                f"{rep.sparseweaver_alms} ALMs "
                f"(+{rep.alm_pct_increase:.2f}% ALMs, "
                f"+{rep.register_pct_increase:.3f}% registers, "
                f"0% block memory / RAM / DSP)",
            ]
        )
