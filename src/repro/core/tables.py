"""The Weaver's two tables: ST and DT.

The *Sparse Workload Information Table* (ST) buffers registration data —
``(vid, start location, degree)`` triples — indexed by hardware warp id
and thread id so that scanning entries in index order visits vertices in
software-thread-id order (the "out-of-order registration, ordered scan"
design decision of Section III-C).

The *Dense Work ID Table* (DT) holds, per warp, the EID row produced by
the most recent ``WEAVER_DEC_ID`` so a following ``WEAVER_DEC_LOC`` can
read it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import WeaverError


@dataclass(frozen=True)
class STEntry:
    """One registered workload: base vertex, edge-run start, degree."""

    vid: int
    loc: int
    degree: int

    def __post_init__(self) -> None:
        if self.degree < 0:
            raise WeaverError(f"negative degree {self.degree} for vid {self.vid}")
        if self.loc < 0:
            raise WeaverError(f"negative location {self.loc} for vid {self.vid}")


class SparseWorkloadTable:
    """Fixed-capacity ST with index-ordered scan.

    Entries are written at explicit indices (``warp_id * threads_per_warp
    + thread_id``); unwritten slots are skipped during the scan, which
    happens when a thread's stride loop has no vertex left to register.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise WeaverError("ST capacity must be at least 1")
        self.capacity = capacity
        self._entries: List[Optional[STEntry]] = [None] * capacity
        self._count = 0
        self.writes = 0

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        """Drop all entries (new registration epoch)."""
        self._entries = [None] * self.capacity
        self._count = 0

    def register(self, index: int, vid: int, loc: int, degree: int) -> None:
        """Write an entry at ``index``; re-registering a slot is an error
        within one epoch (each thread owns exactly one slot)."""
        if not 0 <= index < self.capacity:
            raise WeaverError(
                f"ST index {index} out of range [0, {self.capacity}); "
                "the kernel must chunk registration into epochs"
            )
        if self._entries[index] is not None:
            raise WeaverError(
                f"ST slot {index} registered twice in one epoch"
            )
        self._entries[index] = STEntry(vid, loc, degree)
        self._count += 1
        self.writes += 1

    def get(self, index: int) -> Optional[STEntry]:
        """Entry at ``index`` or None."""
        if not 0 <= index < self.capacity:
            raise WeaverError(f"ST index {index} out of range")
        return self._entries[index]

    def scan(self) -> Iterator[STEntry]:
        """Iterate registered entries in index (== software thread) order."""
        for entry in self._entries:
            if entry is not None:
                yield entry

    def total_degree(self) -> int:
        """Sum of registered degrees (total work items this epoch)."""
        return sum(e.degree for e in self._entries if e is not None)


class DenseWorkIDTable:
    """Per-warp EID rows parked between DEC_ID and DEC_LOC."""

    def __init__(self, num_warps: int, lanes: int) -> None:
        if num_warps < 1 or lanes < 1:
            raise WeaverError("DT needs at least one warp and one lane")
        self.num_warps = num_warps
        self.lanes = lanes
        self._rows: Dict[int, np.ndarray] = {}
        self.writes = 0
        self.reads = 0

    def write(self, warp_id: int, eids: np.ndarray) -> None:
        """Store a warp's EID row (padded with -1 for idle lanes)."""
        self._check_warp(warp_id)
        eids = np.asarray(eids, dtype=np.int64)
        if eids.size != self.lanes:
            raise WeaverError(
                f"DT row must have {self.lanes} lanes, got {eids.size}"
            )
        self._rows[warp_id] = eids.copy()
        self.writes += 1

    def read(self, warp_id: int) -> np.ndarray:
        """Read back a warp's EID row; DEC_LOC before DEC_ID is an error."""
        self._check_warp(warp_id)
        if warp_id not in self._rows:
            raise WeaverError(
                f"warp {warp_id} issued WEAVER_DEC_LOC before WEAVER_DEC_ID"
            )
        self.reads += 1
        return self._rows[warp_id]

    def clear(self) -> None:
        """Drop all rows (new epoch)."""
        self._rows.clear()

    def _check_warp(self, warp_id: int) -> None:
        if not 0 <= warp_id < self.num_warps:
            raise WeaverError(
                f"warp id {warp_id} out of range [0, {self.num_warps})"
            )
