"""SparseWeaver's primary contribution: the Weaver hardware unit.

* :mod:`repro.core.fsm` — the S0..S8 finite state machine of Fig. 6,
  pure logic, unit-testable against the paper's worked example.
* :mod:`repro.core.tables` — Sparse Workload Information Table (ST) and
  Dense Work ID Table (DT).
* :mod:`repro.core.unit` — the timed per-core unit the simulator talks
  to through the four ``WEAVER_*`` instructions.
* :mod:`repro.core.isa` — RISC-V custom-opcode encodings of Table II.
* :mod:`repro.core.eghw` — the edge-generating-hardware baseline of
  Case Study 1 (an SCU/GraphPEG stand-in).
* :mod:`repro.core.area` — the analytic FPGA area model behind Table IV.
"""

from repro.core.tables import STEntry, SparseWorkloadTable, DenseWorkIDTable
from repro.core.fsm import WeaverFSM, WeaverState, DecodeResult
from repro.core.unit import WeaverUnit
from repro.core.eghw import EGHWUnit, EdgeBatch
from repro.core.isa import (
    WEAVER_INSTRUCTIONS,
    InstructionSpec,
    encode_r_type,
    decode_r_type,
)
from repro.core.area import WeaverAreaModel, AreaReport

__all__ = [
    "STEntry",
    "SparseWorkloadTable",
    "DenseWorkIDTable",
    "WeaverFSM",
    "WeaverState",
    "DecodeResult",
    "WeaverUnit",
    "EGHWUnit",
    "EdgeBatch",
    "WEAVER_INSTRUCTIONS",
    "InstructionSpec",
    "encode_r_type",
    "decode_r_type",
    "WeaverAreaModel",
    "AreaReport",
]
