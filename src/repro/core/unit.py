"""Timed per-core Weaver unit.

Wraps the pure FSM with the Section III-C / V-D timing model:

* The unit serves one request at a time (``_free_at`` serialization) —
  it sits in the SFU slot of the Vortex pipeline.
* ``WEAVER_REG`` costs one ST write (tables live in shared memory, so
  the cost is the configurable table latency the Fig. 13 sweep varies).
* ``WEAVER_DEC_ID`` costs the FSM cycles visited plus one table-read
  latency per ST fetch plus one DT write.
* ``WEAVER_DEC_LOC`` costs one DT read.
* ``WEAVER_SKIP`` costs a single cycle.
* A ``WEAVER_REG`` arriving while the FSM is in END (or before any
  decode) starts a fresh epoch: tables and skip set are cleared and the
  FSM returns to S0 — the reset rule stated under Fig. 6.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.errors import WeaverError
from repro.core.fsm import DecodeResult, WeaverFSM, WeaverState
from repro.core.tables import DenseWorkIDTable, SparseWorkloadTable
from repro.sim.config import GPUConfig
from repro.sim.instructions import Op


class WeaverUnit:
    """One core's Weaver, driven by the simulator's unit protocol.

    The FSM scan runs on a background timeline: after serving a decode
    request the unit immediately precomputes the next OD batches (depth
    ``prefetch_depth``), so a later ``WEAVER_DEC_ID`` usually pops a
    ready batch and pays only the DT-write latency. This is the
    pipelining that makes Fig. 13 flat — ST read latency is absorbed in
    unit idle time unless the GPU outruns the scan, in which case the
    request blocks until the batch is ready (the unit *can* become the
    bottleneck, as Section II-B warns for offload-everything designs).
    Work is still handed out strictly in request-arrival order (dynamic
    distribution), since batch contents are request-agnostic.

    Note: a ``WEAVER_SKIP`` takes effect on the FSM scan (CED + future
    entries); already-precomputed batches keep their work items, which
    the kernel's own filters handle — matching the paper's advisory
    skip semantics.
    """

    #: Write-buffer bypass latency for DEC_LOC (cycles).
    DT_BYPASS_LATENCY = 4

    def __init__(self, config: GPUConfig, prefetch_depth: int = 4) -> None:
        self.config = config
        self.lanes = config.threads_per_warp
        capacity = min(
            config.weaver_entries,
            config.warps_per_core * config.threads_per_warp,
        )
        self.st = SparseWorkloadTable(capacity)
        self.dt = DenseWorkIDTable(config.warps_per_core, self.lanes)
        self.fsm = WeaverFSM(self.st, self.lanes)
        self.prefetch_depth = max(1, prefetch_depth)
        self._ready: list = []          # [(DecodeResult, ready_time)]
        self._scan_time = 0             # background FSM timeline
        self._scan_started = False
        self._free_at = 0
        self._epoch_open = False
        self.registrations = 0
        self.decodes = 0
        self.skips = 0

    # ------------------------------------------------------------------
    # Simulator unit protocol
    # ------------------------------------------------------------------
    def handle(
        self, op: Op, warp_slot: int, now: int, payload: Any
    ) -> Tuple[int, Any]:
        """Serve one Weaver instruction; returns ``(done_time, response)``.

        Latency model: table *writes* (REG, the DT row during DEC_ID)
        are fire-and-forget — the issuing warp continues next cycle
        while the banked table absorbs the write; table *reads* with a
        data dependency (DEC_LOC) block the reading warp for the table
        latency but do not occupy the unit (the core reads the shared-
        memory-backed row directly).
        """
        if op == Op.WEAVER_REG:
            # Banked ST: one warp-wide row lands per cycle; the write
            # latency itself is covered by the scan-fill charge.
            start = max(now, self._free_at)
            self._register(warp_slot, payload)
            self._free_at = start + 1
            return start + 1, None
        if op == Op.WEAVER_DEC_ID:
            start = max(now, self._free_at)
            latency, response = self._decode_ids(warp_slot, start)
            done = start + latency
            self._free_at = done
            return done, response
        if op == Op.WEAVER_DEC_LOC:
            # The row was written by this warp's own DEC_ID moments ago;
            # a write-buffer bypass forwards it, capping the read cost.
            # (Without the bypass the full table latency would leak into
            # every distribution round and Fig. 13 could not be flat.)
            latency = min(self.config.weaver_table_latency,
                          self.DT_BYPASS_LATENCY)
            return now + latency, self.dt.read(warp_slot)
        if op == Op.WEAVER_SKIP:
            self.fsm.skip(int(payload))
            self.skips += 1
            return now + 1, None
        raise WeaverError(f"WeaverUnit cannot handle {op.name}")

    # ------------------------------------------------------------------
    def _register(self, warp_slot: int, entries: Any) -> int:
        """Write a warp's registration tuples into the ST.

        ``entries`` is an iterable of ``(lane, vid, loc, degree)``. A
        registration arriving after the previous epoch's distribution
        finished resets the unit for a new epoch.
        """
        if not self._epoch_open:
            self.st.clear()
            self.dt.clear()
            self.fsm.reset()
            self._ready.clear()
            self._scan_started = False
            self._epoch_open = True
        if self.fsm.state != WeaverState.INIT:
            raise WeaverError(
                "WEAVER_REG received while distribution is in flight; "
                "the kernel must synchronize between stages"
            )
        base = warp_slot * self.lanes
        count = 0
        for lane, vid, loc, degree in entries:
            if not 0 <= lane < self.lanes:
                raise WeaverError(f"lane {lane} out of range [0, {self.lanes})")
            self.st.register(base + lane, int(vid), int(loc), int(degree))
            count += 1
        self.registrations += count
        # Parallel bank write: one table-write latency per warp request.
        return self.config.weaver_table_latency if count else 1

    def _scan_cost(self, result: DecodeResult) -> int:
        """Background FSM cycles one batch costs.

        ST reads are pipelined: the scan cursor is sequential and
        request-independent, so the decoupled prefetcher streams entries
        at one FSM cycle per state visited. The table-read latency is
        paid once per epoch as pipeline fill (charged by the first
        ``_refill``), not per entry — which is what keeps Fig. 13 flat
        as the table latency grows.
        """
        return result.fsm_cycles

    def _refill(self) -> None:
        """Precompute OD batches on the background timeline."""
        if not self._scan_started and not self.fsm.exhausted:
            # Pipeline fill: first ST read of the epoch.
            self._scan_time += self.config.weaver_table_latency
            self._scan_started = True
        while len(self._ready) < self.prefetch_depth and not self.fsm.exhausted:
            result = self.fsm.decode()
            self._scan_time += self._scan_cost(result)
            self._ready.append((result, self._scan_time))
            if result.exhausted:
                break

    def _decode_ids(self, warp_slot: int, now: int) -> Tuple[int, DecodeResult]:
        """Serve one DEC_ID request; park EIDs in the DT.

        Pops a precomputed batch when one is ready; otherwise waits for
        the background scan. The DT-row write is fire-and-forget (it
        only matters to the *same* warp's later DEC_LOC, which in
        program order cannot overtake it). Requests are served in
        arrival order (dynamic work distribution): the caller's
        ``_free_at`` serialization provides exactly that.
        """
        self._scan_time = max(self._scan_time, now)
        if not self._ready:
            self._refill()
        if self._ready:
            result, ready_time = self._ready.pop(0)
            wait = max(0, ready_time - now)
        else:
            # FSM already exhausted: answer -1s in one cycle.
            result = self.fsm.decode()
            wait = result.fsm_cycles
        self.decodes += 1
        self.dt.write(warp_slot, result.eids)
        latency = wait + 1
        self._refill()
        if self.fsm.exhausted and not self._ready:
            # Distribution drained: the next WEAVER_REG opens a new epoch.
            self._epoch_open = False
        return latency, result

    # ------------------------------------------------------------------
    @property
    def total_fsm_cycles(self) -> int:
        """FSM cycles consumed so far (for unit-level assertions)."""
        return self.fsm.total_fsm_cycles
