"""RISC-V encodings of the SparseWeaver ISA extension (Table II).

The paper adds four instructions on the Vortex GPU's CUSTOM opcode
space:

=================  =====  =========  ======  ==============================
Instruction        IType  Opcode     funct   Description
=================  =====  =========  ======  ==============================
``WEAVER_REG``     C      CUSTOM1    1       Register VID, loc, degree
``WEAVER_DEC_ID``  R      CUSTOM0    7       Return VID of next workload
``WEAVER_DEC_LOC`` R      CUSTOM0    8       Return EID of next workload
``WEAVER_SKIP``    C      CUSTOM1    2       Send skip signal using VID
=================  =====  =========  ======  ==============================

R-type words are ``funct7 | rs2 | rs1 | funct3 | rd | opcode``; the
CUSTOM ("C") forms reuse the R layout with funct2 in the low bits of
funct7 and a third source register in its high bits, as the paper
describes for Vortex. Encoders/decoders below round-trip 32-bit words so
the compiler layer can emit real instruction bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError

# Standard RISC-V custom opcode values (7-bit).
OPCODE_CUSTOM0 = 0x0B
OPCODE_CUSTOM1 = 0x2B

_OPCODE_NAMES = {OPCODE_CUSTOM0: "CUSTOM0", OPCODE_CUSTOM1: "CUSTOM1"}


@dataclass(frozen=True)
class InstructionSpec:
    """Mnemonic, format, opcode and function code of one instruction."""

    mnemonic: str
    itype: str  # "R" or "C"
    opcode: int
    funct: int
    description: str

    @property
    def opcode_name(self) -> str:
        """CUSTOM0 / CUSTOM1."""
        return _OPCODE_NAMES[self.opcode]


WEAVER_INSTRUCTIONS: Dict[str, InstructionSpec] = {
    "WEAVER_REG": InstructionSpec(
        "WEAVER_REG", "C", OPCODE_CUSTOM1, 1, "Register VID, loc, deg"
    ),
    "WEAVER_DEC_ID": InstructionSpec(
        "WEAVER_DEC_ID", "R", OPCODE_CUSTOM0, 7, "Return VID of next workload"
    ),
    "WEAVER_DEC_LOC": InstructionSpec(
        "WEAVER_DEC_LOC", "R", OPCODE_CUSTOM0, 8, "Return EID of next workload"
    ),
    "WEAVER_SKIP": InstructionSpec(
        "WEAVER_SKIP", "C", OPCODE_CUSTOM1, 2, "Send skip signal using VID"
    ),
}


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value < 32:
        raise ConfigError(f"{name} must be a 5-bit register number, got {value}")


def encode_r_type(
    opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct7: int
) -> int:
    """Encode a 32-bit R-type instruction word."""
    if not 0 <= opcode < 128:
        raise ConfigError(f"opcode must be 7 bits, got {opcode}")
    if not 0 <= funct3 < 8:
        raise ConfigError(f"funct3 must be 3 bits, got {funct3}")
    if not 0 <= funct7 < 128:
        raise ConfigError(f"funct7 must be 7 bits, got {funct7}")
    _check_reg("rd", rd)
    _check_reg("rs1", rs1)
    _check_reg("rs2", rs2)
    return (
        (funct7 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (rd << 7)
        | opcode
    )


def decode_r_type(word: int) -> Dict[str, int]:
    """Decode a 32-bit R-type word into its fields."""
    if not 0 <= word < (1 << 32):
        raise ConfigError("instruction word must fit in 32 bits")
    return {
        "opcode": word & 0x7F,
        "rd": (word >> 7) & 0x1F,
        "funct3": (word >> 12) & 0x07,
        "rs1": (word >> 15) & 0x1F,
        "rs2": (word >> 20) & 0x1F,
        "funct7": (word >> 25) & 0x7F,
    }


def encode_custom_type(
    opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct2: int, rs3: int
) -> int:
    """Encode the Vortex CUSTOM format: funct2 + a third source register.

    Layout (R4-type, as used by Vortex for 3-source custom ops):
    ``rs3 | funct2 | rs2 | rs1 | funct3 | rd | opcode``.
    """
    if not 0 <= funct2 < 4:
        raise ConfigError(f"funct2 must be 2 bits, got {funct2}")
    _check_reg("rs3", rs3)
    funct7 = (rs3 << 2) | funct2
    return encode_r_type(opcode, rd, funct3, rs1, rs2, funct7)


def decode_custom_type(word: int) -> Dict[str, int]:
    """Decode the R4-style custom word into fields including rs3/funct2."""
    fields = decode_r_type(word)
    funct7 = fields.pop("funct7")
    fields["funct2"] = funct7 & 0x03
    fields["rs3"] = funct7 >> 2
    return fields


def encode_weaver(mnemonic: str, rd: int = 0, rs1: int = 0, rs2: int = 0,
                  rs3: int = 0) -> int:
    """Encode any Table II instruction by mnemonic."""
    if mnemonic not in WEAVER_INSTRUCTIONS:
        raise ConfigError(f"unknown Weaver instruction {mnemonic!r}")
    spec = WEAVER_INSTRUCTIONS[mnemonic]
    if spec.itype == "R":
        # funct values above 7 spill into funct7 (funct3 is 3 bits wide).
        return encode_r_type(spec.opcode, rd, spec.funct & 0x07, rs1, rs2,
                             spec.funct >> 3)
    return encode_custom_type(spec.opcode, rd, spec.funct & 0x07, rs1, rs2,
                              spec.funct & 0x03, rs3)


def identify_weaver(word: int) -> str:
    """Identify which Table II instruction a word encodes.

    Raises :class:`~repro.errors.ConfigError` for non-Weaver words.
    """
    fields = decode_r_type(word)
    for spec in WEAVER_INSTRUCTIONS.values():
        if fields["opcode"] != spec.opcode:
            continue
        if (
            spec.itype == "R"
            and fields["funct3"] == (spec.funct & 0x07)
            and fields["funct7"] == (spec.funct >> 3)
        ):
            return spec.mnemonic
        if spec.itype == "C":
            funct2 = fields["funct7"] & 0x03
            if funct2 == (spec.funct & 0x03) and fields["funct3"] == (
                spec.funct & 0x07
            ):
                return spec.mnemonic
    raise ConfigError(f"word 0x{word:08x} is not a Weaver instruction")
