"""Frontend: the UDF programming model and the graph-processing driver.

Users express an algorithm as the four UDF methods of Section IV (init,
gather, apply, filter) captured in an :class:`~repro.frontend.udf.Algorithm`
spec; the :class:`~repro.frontend.framework.GraphProcessor` plays the role
of the SparseWeaver compiler + runtime — it selects a schedule, generates
the gather/apply kernels, runs them on the simulator and checks
convergence. :mod:`repro.frontend.reference` holds pure-numpy oracles for
the test suite.
"""

from repro.frontend.udf import Algorithm, Direction
from repro.frontend.framework import GraphProcessor, RunResult
from repro.frontend import reference

__all__ = ["Algorithm", "Direction", "GraphProcessor", "RunResult", "reference"]
