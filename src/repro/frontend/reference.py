"""Pure-numpy reference implementations of the benchmark algorithms.

These are the correctness oracles: every scheduling scheme, run through
the cycle simulator, must produce the same vertex properties (up to
floating-point accumulation order) as these direct implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph


def pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    iterations: int = 20,
    tol: Optional[float] = None,
) -> np.ndarray:
    """Power-iteration PageRank over out-edges.

    Dangling vertices contribute their rank nowhere (matching the
    gather-kernel semantics, which only moves mass along edges).
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    rank = np.full(n, 1.0 / n)
    out_deg = graph.degrees.astype(np.float64)
    src = graph.edge_sources()
    dst = graph.col_idx
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)
    for _ in range(iterations):
        contrib = rank / safe_deg
        acc = np.zeros(n)
        np.add.at(acc, dst, contrib[src])
        new_rank = (1.0 - damping) / n + damping * acc
        if tol is not None and np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank


def bfs_levels(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """BFS level (hop distance) per vertex; -1 for unreachable."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"BFS source {source} out of range [0, {n})")
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors(u):
                v = int(v)
                if level[v] < 0:
                    level[v] = depth
                    next_frontier.append(v)
        frontier = next_frontier
    return level


def sssp(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Bellman-Ford shortest path distances; inf for unreachable."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"SSSP source {source} out of range [0, {n})")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    src = graph.edge_sources()
    dst = graph.col_idx
    w = graph.weights
    if np.any(w < 0):
        raise AlgorithmError("SSSP requires non-negative weights")
    for _ in range(max(1, n - 1)):
        relaxed = dist[src] + w
        new_dist = dist.copy()
        np.minimum.at(new_dist, dst, relaxed)
        if np.array_equal(
            new_dist, dist, equal_nan=False
        ) or np.allclose(new_dist, dist, equal_nan=True):
            break
        dist = new_dist
    return dist


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Minimum-label connected components over the symmetrized graph.

    Returns, per vertex, the smallest vertex id in its (weakly)
    connected component — the same labels the CC kernel converges to.
    """
    n = graph.num_vertices
    label = np.arange(n, dtype=np.int64)
    src = graph.edge_sources()
    dst = graph.col_idx
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    changed = True
    while changed:
        new_label = label.copy()
        np.minimum.at(new_label, all_dst, label[all_src])
        # pointer jumping
        new_label = new_label[new_label]
        changed = not np.array_equal(new_label, label)
        label = new_label
    return label


def gcn_layer(
    graph: CSRGraph,
    features: np.ndarray,
    weight: np.ndarray,
    add_self_loops: bool = True,
) -> np.ndarray:
    """One GCN layer: ``D^-1/2 (A [+ I]) D^-1/2 X W`` (Kipf & Welling).

    Matches the two simulated kernels: SpMM (feature transform +
    neighbor aggregation) and GraphSum (degree-normalized mean).
    """
    n = graph.num_vertices
    if features.shape[0] != n:
        raise AlgorithmError(
            f"features must have {n} rows, got {features.shape[0]}"
        )
    if weight.shape[0] != features.shape[1]:
        raise AlgorithmError("weight rows must match feature columns")
    src = graph.edge_sources()
    dst = graph.col_idx
    if add_self_loops:
        loops = np.arange(n, dtype=np.int64)
        src = np.concatenate([src, loops])
        dst = np.concatenate([dst, loops])
    deg = np.bincount(dst, minlength=n).astype(np.float64)
    deg_src = np.bincount(src, minlength=n).astype(np.float64)
    norm = 1.0 / np.sqrt(np.where(deg_src > 0, deg_src, 1.0))[src]
    norm = norm / np.sqrt(np.where(deg > 0, deg, 1.0))[dst]
    transformed = features @ weight
    out = np.zeros((n, weight.shape[1]))
    np.add.at(out, dst, transformed[src] * norm[:, None])
    return out
