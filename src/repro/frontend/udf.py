"""User-Defined Function (UDF) model of a graph algorithm.

Section IV: "The UDFs consist of four different methods: init, gather,
apply, and filter." An :class:`Algorithm` bundles those callables with
the metadata the kernel generators need to emit the right memory
traffic:

* ``edge_value_arrays`` — state arrays read per edge at the *opposite*
  endpoint (the gather inputs).
* ``base_filter_arrays`` — state arrays read per *base* vertex during
  registration-time filtering.
* ``acc_array`` — the accumulator written by gather.

Terminology: in pull direction the *base* vertex is the gathering
destination and the *other* endpoint is the source; in push direction
the base is the frontier source and the other is the destination. The
filters are expressed against base/other so one kernel generator serves
both directions, exactly like the paper's compiler placing dest/source
filters by direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

State = Dict[str, np.ndarray]


class Direction(Enum):
    """Gather traversal direction (Section III-C)."""

    PUSH = "push"   # iterate outgoing edges of active sources
    PULL = "pull"   # iterate incoming edges of destinations


@dataclass
class Algorithm:
    """A graph algorithm in UDF form.

    Callables (all vectorized over numpy arrays):

    ``init_state(graph, **params) -> state dict``
        Allocate and initialize all state arrays.
    ``edge_update(state, bases, others, weights, eids)``
        The gather+sum step for a batch of edges (duplicate bases must
        be handled with ``np.add.at``-style unbuffered ops).
    ``base_filter(state, vids) -> bool mask``
        True where the base vertex is *filtered out* (registration-time
        degree-zeroing). ``None`` when the algorithm has no base filter.
    ``other_filter(state, others) -> bool mask``
        True where the opposite endpoint contributes nothing (edge-time
        filter). ``None`` when absent.
    ``early_exit(state, bases) -> bool mask``
        True where the base vertex needs no further gathering (the
        WEAVER_SKIP trigger). ``None`` when absent.
    ``apply_update(state, graph, iteration) -> int``
        The apply kernel: fold accumulators into vertex values; returns
        the number of vertices that changed.
    ``converged(state, iteration, changed) -> bool``
        Whether the algorithm is done after this iteration.
    """

    name: str
    direction: Direction
    init_state: Callable[..., State]
    edge_update: Callable[[State, np.ndarray, np.ndarray, np.ndarray,
                           np.ndarray], None]
    apply_update: Callable[[State, CSRGraph, int], int]
    converged: Callable[[State, int, int], bool]
    result_array: str
    acc_array: str
    edge_value_arrays: Tuple[str, ...] = ()
    base_filter_arrays: Tuple[str, ...] = ()
    uses_weights: bool = False
    base_filter: Optional[Callable[[State, np.ndarray], np.ndarray]] = None
    other_filter: Optional[Callable[[State, np.ndarray], np.ndarray]] = None
    early_exit: Optional[Callable[[State, np.ndarray], np.ndarray]] = None
    gather_alu: int = 1
    apply_alu: int = 2
    max_iterations: int = 100
    #: Which endpoint the gather accumulates into: "base" (pull —
    #: lanes own their accumulator, vertex mapping needs no atomics) or
    #: "other" (push — scatter, every scheme pays atomics).
    accumulate_target: str = "base"

    def __post_init__(self) -> None:
        if not self.name:
            raise AlgorithmError("algorithm name must be non-empty")
        if self.base_filter is not None and not self.base_filter_arrays:
            # A filter that reads no state is legal but unusual; allow it.
            pass
        if self.max_iterations < 1:
            raise AlgorithmError("max_iterations must be at least 1")
        if self.accumulate_target not in ("base", "other"):
            raise AlgorithmError(
                f"accumulate_target must be 'base' or 'other', got "
                f"{self.accumulate_target!r}"
            )

    # ------------------------------------------------------------------
    @property
    def has_base_filter(self) -> bool:
        """Whether registration applies a base-vertex filter."""
        return self.base_filter is not None

    @property
    def has_other_filter(self) -> bool:
        """Whether edge processing filters on the opposite endpoint."""
        return self.other_filter is not None

    @property
    def has_early_exit(self) -> bool:
        """Whether gathering for a base vertex can stop early (BFS)."""
        return self.early_exit is not None

    def make_state(self, graph: CSRGraph, **params) -> State:
        """Initialize state and validate the declared arrays exist."""
        state = self.init_state(graph, **params)
        missing = [
            name
            for name in (self.result_array, self.acc_array,
                         *self.edge_value_arrays, *self.base_filter_arrays)
            if name not in state
        ]
        if missing:
            raise AlgorithmError(
                f"algorithm {self.name!r} init_state did not produce "
                f"declared arrays: {missing}"
            )
        return state

    def filtered_degrees(self, state: State, vids: np.ndarray,
                         degrees: np.ndarray) -> np.ndarray:
        """Apply the base filter by zeroing degrees (Section III-C:
        "SparseWeaver inserts code that changes the degree to zero when
        a vertex is filtered")."""
        if self.base_filter is None:
            return degrees
        out = degrees.copy()
        out[self.base_filter(state, vids)] = 0
        return out
