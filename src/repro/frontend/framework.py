"""GraphProcessor: the SparseWeaver runtime driver.

Plays the role of the paper's compiler + runtime: given an algorithm
(UDF spec), a schedule and a GPU configuration, it builds the kernel
environment, runs init / gather / apply kernels on the simulator each
iteration, performs the functional state updates, and stops on the
algorithm's convergence condition. Results carry both the computed
vertex properties and the merged :class:`~repro.sim.stats.KernelStats`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import SimulationError
from repro.frontend.udf import Algorithm, Direction
from repro.graph.csr import CSRGraph
from repro.sched.base import KernelEnv, Schedule
from repro.sched.registry import make_schedule
from repro.sim.config import GPUConfig
from repro.sim.engines import get_engine
from repro.sim.fast import ReplayHint
from repro.sim.instructions import Phase, alu, load, store
from repro.sim.memory import MemoryMap
from repro.sim.stats import KernelStats

_GPU_KWARG_WARNED = False


def _warn_gpu_kwarg() -> None:
    """Warn once per process about the legacy ``gpu=`` spelling."""
    global _GPU_KWARG_WARNED
    if not _GPU_KWARG_WARNED:
        _GPU_KWARG_WARNED = True
        warnings.warn(
            "GraphProcessor(gpu=...) is deprecated; pass "
            "engine='<name>' instead (see docs/engines.md)",
            DeprecationWarning,
            stacklevel=3,
        )


@dataclass
class RunResult:
    """Outcome of one algorithm run."""

    values: np.ndarray
    iterations: int
    stats: KernelStats
    state: Dict[str, np.ndarray]
    per_iteration: List[KernelStats] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Simulated cycles across all kernels."""
        return self.stats.total_cycles


class GraphProcessor:
    """Run a UDF algorithm on the simulated GPU under a given schedule."""

    def __init__(
        self,
        algorithm: Algorithm,
        schedule: Union[str, Schedule] = "sparseweaver",
        config: Optional[GPUConfig] = None,
        apply_weaver_penalty: bool = True,
        symmetrize: bool = False,
        time_init: bool = True,
        time_apply: bool = True,
        validate: bool = False,
        tracer=None,
        exec_tracer=None,
        engine: Optional[str] = None,
        gpu: Optional[str] = None,
    ) -> None:
        """``validate=True`` arms the edge-coverage check: every gather
        launch must hand each traversal edge to ``edge_update`` at most
        once — and, for algorithms without filters or early exit,
        exactly once. Catches schedules that drop or double-process
        work (they would otherwise just produce subtly wrong floats).

        ``tracer`` (a :class:`repro.obs.tracing.Tracer`) records one
        wall-clock span per kernel launch — init, gather and apply per
        iteration — each carrying simulated cycles and breakdowns as
        span args.  ``exec_tracer`` (a
        :class:`repro.sim.trace.ExecutionTracer`) is handed to every
        kernel launch to capture the simulated-cycle instruction/stall
        timeline.  Both default to off and add no per-instruction work.

        ``engine`` selects the simulator execution engine by name
        (``reference``, ``fast``, ``auto``, or any registered engine;
        ``None`` resolves via ``REPRO_ENGINE`` then the default).  The
        engine never changes simulated results — only how fast they
        are produced.  ``gpu`` is the deprecated spelling of the same
        parameter.
        """
        if gpu is not None:
            _warn_gpu_kwarg()
            if engine is None:
                engine = gpu
        self._engine = get_engine(engine)
        self.engine_name = self._engine.name
        self.algorithm = algorithm
        self.schedule = make_schedule(schedule)
        base_config = config or GPUConfig.vortex_bench()
        if apply_weaver_penalty and self.schedule.name == "sparseweaver":
            # Section V: SparseWeaver runs are charged half the L1 to
            # pay for the 512-entry ST/DT tables.
            base_config = base_config.with_weaver_penalty()
        self.config = base_config
        self.symmetrize = symmetrize
        self.time_init = time_init
        self.time_apply = time_apply
        self.validate = validate
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.exec_tracer = exec_tracer

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
        collect_per_iteration: bool = False,
        flush_caches: bool = False,
    ) -> RunResult:
        """Execute the algorithm to convergence (or the iteration cap)."""
        alg = self.algorithm
        work_graph = graph.undirected() if self.symmetrize else graph
        traversal = (
            work_graph.reverse() if alg.direction is Direction.PULL
            else work_graph
        )
        state = alg.make_state(work_graph)
        edge_counter = None
        if self.validate:
            alg, edge_counter = _counting_algorithm(alg)
        gpu = self._engine.build_gpu(self.config, schedule=self.schedule)
        env = KernelEnv(
            graph=traversal,
            algorithm=alg,
            state=state,
            config=self.config,
            memory_map=MemoryMap(),
        )
        env.memory = gpu.memory

        # Replay hints: a replay-capable GPU traces each kernel once
        # and replays it on later launches.  The gather kernel is only
        # eligible when its instruction stream cannot depend on state
        # the kernel itself mutates (``trace_safe`` schedules, no
        # filters / early exit) and nothing forces the per-instruction
        # loop (hardware units, execution tracers).  During the trace
        # drain a recording ``edge_update`` captures argument tuples
        # instead of mutating state; every replay re-executes them in
        # issue order, so float accumulation order matches reference.
        # Init/apply are grid-stride elementwise kernels, so a replay
        # GPU can compile their traces analytically (contiguous
        # per-warp index ranges) and never needs the warp generators;
        # an execution tracer forces the reference loop, which does.
        fast_elementwise = (gpu.supports_replay
                            and self.exec_tracer is None)
        if fast_elementwise:
            init_hint = ReplayHint("init", elementwise=(
                [],
                [env.region(name) for name in _vertex_sized_arrays(env)],
                1, Phase.INIT, env.num_vertices))
            apply_hint = ReplayHint("apply", elementwise=(
                [env.region(alg.acc_array),
                 env.region(alg.result_array)],
                [env.region(alg.result_array),
                 env.region(alg.acc_array)],
                alg.apply_alu, Phase.APPLY, env.num_vertices))
        else:
            init_hint = ReplayHint("init")
            apply_hint = ReplayHint("apply")
        fast_gather = (
            gpu.supports_replay
            and self.exec_tracer is None
            and self.schedule.trace_safe
            and not self.schedule.uses_hardware_unit
            and not (alg.has_base_filter or alg.has_other_filter
                     or alg.has_early_exit)
        )
        gather_hint = None
        recording_alg = None
        if fast_gather:
            gather_capture: List = []
            record = gather_capture.append

            def recording_edge_update(state, bases, others, weights,
                                      eids):
                record((state, bases, others, weights, eids))

            recording_alg = dc_replace(alg,
                                       edge_update=recording_edge_update)
            gather_hint = ReplayHint("gather", capture=gather_capture,
                                     effect=alg.edge_update)

        total = KernelStats()
        per_iteration: List[KernelStats] = []
        if self.time_init:
            with self.tracer.span("init", cat="kernel",
                                  schedule=self.schedule.name) as sp:
                init_stats = gpu.run_kernel(
                    None if fast_elementwise
                    else _init_kernel_factory(env),
                    flush_caches=flush_caches,
                    tracer=self.exec_tracer,
                    replay=init_hint,
                )
                sp.args["cycles"] = init_stats.total_cycles
            total.merge(init_stats)
        cap = max_iterations if max_iterations is not None else (
            alg.max_iterations
        )
        if cap < 1:
            raise SimulationError("iteration cap must be at least 1")

        iterations = 0
        while True:
            # Factories are rebuilt per launch: schedules with shared
            # per-launch state (block registries, hardware tables) must
            # start each gather kernel fresh.  A stored trace replaces
            # the factory entirely — eligible streams are identical
            # across iterations — so replays skip the rebuild.
            swap = recording_alg is not None and not gpu.has_trace("gather")
            if swap:
                env.algorithm = recording_alg
            try:
                if gpu.has_trace("gather"):
                    warp_factory = None
                    unit_factory = None
                else:
                    warp_factory = self.schedule.warp_factory(env)
                    unit_factory = (
                        self.schedule.unit_factory(env)
                        if self.schedule.uses_hardware_unit else None
                    )
                if edge_counter is not None:
                    edge_counter["count"] = 0
                with self.tracer.span("gather", cat="kernel",
                                      iteration=iterations,
                                      schedule=self.schedule.name) as sp:
                    gather_stats = gpu.run_kernel(
                        warp_factory, unit_factory=unit_factory,
                        tracer=self.exec_tracer,
                        replay=gather_hint,
                    )
                    sp.args["cycles"] = gather_stats.total_cycles
                    sp.args["phases"] = gather_stats.phase_breakdown()
                    sp.args["stalls"] = gather_stats.stall_breakdown()
            finally:
                if swap:
                    env.algorithm = alg
            if edge_counter is not None:
                _check_edge_coverage(alg, env, edge_counter["count"])
            if self.time_apply:
                with self.tracer.span("apply", cat="kernel",
                                      iteration=iterations,
                                      schedule=self.schedule.name) as sp:
                    apply_stats = gpu.run_kernel(
                        None if (fast_elementwise
                                 or gpu.has_trace("apply"))
                        else _apply_kernel_factory(env),
                        tracer=self.exec_tracer,
                        replay=apply_hint,
                    )
                    sp.args["cycles"] = apply_stats.total_cycles
            else:
                apply_stats = KernelStats()
            changed = alg.apply_update(state, work_graph, iterations)
            iter_stats = KernelStats()
            iter_stats.merge(gather_stats)
            iter_stats.merge(apply_stats)
            total.merge(iter_stats)
            if collect_per_iteration:
                per_iteration.append(iter_stats)
            iterations += 1
            if alg.converged(state, iterations - 1, changed):
                break
            if iterations >= cap:
                break
        return RunResult(
            values=state[alg.result_array].copy(),
            iterations=iterations,
            stats=total,
            state=state,
            per_iteration=per_iteration,
        )


# ----------------------------------------------------------------------
# Validation (edge-coverage failure detection)
# ----------------------------------------------------------------------
def _counting_algorithm(alg: Algorithm):
    """Wrap ``edge_update`` so every handed-over edge is counted."""
    from dataclasses import replace as dc_replace

    counter = {"count": 0}
    original = alg.edge_update

    def counting_edge_update(state, bases, others, weights, eids):
        counter["count"] += len(bases)
        original(state, bases, others, weights, eids)

    return dc_replace(alg, edge_update=counting_edge_update), counter


def _check_edge_coverage(alg: Algorithm, env: KernelEnv,
                         count: int) -> None:
    """A gather launch may hand out each edge at most once; with no
    filters or early exit it must hand out all of them."""
    total = env.num_edges
    if count > total:
        raise SimulationError(
            f"schedule processed {count} edges but the traversal graph "
            f"has only {total}: duplicated work detected"
        )
    exhaustive = not (alg.has_base_filter or alg.has_other_filter
                      or alg.has_early_exit)
    if exhaustive and count != total:
        raise SimulationError(
            f"schedule processed {count} of {total} edges: dropped "
            "work detected"
        )


# ----------------------------------------------------------------------
# Init / apply kernels (identical across schedules)
# ----------------------------------------------------------------------
def _vertex_sized_arrays(env: KernelEnv) -> List[str]:
    n = env.num_vertices
    return [
        name
        for name, arr in env.state.items()
        if arr.size == n and not name.startswith("_")
    ]


def _elementwise_factory(env: KernelEnv, reads: List[str],
                         writes: List[str], alu_ops: int, phase: Phase):
    """Grid-stride elementwise kernel over vertices (timing only)."""
    num_epochs = max(
        1, math.ceil(env.num_vertices / env.config.total_threads)
    )
    stride = env.config.total_threads
    n = env.num_vertices

    def factory(ctx):
        if ctx.thread_ids[0] >= n:
            return None

        def kernel():
            for epoch in range(num_epochs):
                vids = ctx.thread_ids + epoch * stride
                vids = vids[vids < n]
                if vids.size == 0:
                    break
                for name in reads:
                    yield load(phase, env.region(name), vids)
                yield alu(phase, alu_ops)
                for name in writes:
                    yield store(phase, env.region(name), vids)

        return kernel()

    return factory


def _init_kernel_factory(env: KernelEnv):
    """Init kernel: every vertex-sized state array gets stored once."""
    arrays = _vertex_sized_arrays(env)
    return _elementwise_factory(env, [], arrays, 1, Phase.INIT)


def _apply_kernel_factory(env: KernelEnv):
    """Apply kernel: read accumulator + result, write result back."""
    alg = env.algorithm
    reads = [alg.acc_array, alg.result_array]
    writes = [alg.result_array, alg.acc_array]
    return _elementwise_factory(env, reads, writes, alg.apply_alu,
                                Phase.APPLY)
