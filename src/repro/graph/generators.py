"""Synthetic graph generators mirroring the paper's workload families.

The paper evaluates on nine real-world graphs (Table III) spanning three
shapes: dense skewed biological networks, sparse near-regular road
networks, and power-law web/social graphs. These generators produce
scaled-down analogs of each shape, plus the NetworkX power-law family used
verbatim by the skewness study (Section V-B / Fig. 11).

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph, INDEX_DTYPE


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def powerlaw_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.1,
    seed: Optional[int] = None,
    symmetric: bool = True,
) -> CSRGraph:
    """Power-law degree graph with a fixed edge budget.

    Vertex attractiveness follows ``rank ** -(1 / (exponent - 1))`` (the
    Zipf form of a power law); edge endpoints are sampled proportionally.
    This is the configuration-model analog of the NetworkX power-law
    generator the paper feeds its skewness sweep, but with an exact edge
    count so families share a fixed |E| while varying |V| — precisely the
    Fig. 11 setup.
    """
    if num_vertices < 2:
        raise GraphError("powerlaw_graph needs at least 2 vertices")
    if num_edges < 1:
        raise GraphError("powerlaw_graph needs at least 1 edge")
    if exponent <= 1.0:
        raise GraphError("power-law exponent must exceed 1")
    rng = _rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    attract = ranks ** (-1.0 / (exponent - 1.0))
    prob = attract / attract.sum()
    src = rng.choice(num_vertices, size=num_edges, p=prob)
    dst = rng.integers(0, num_vertices, size=num_edges)
    # avoid self loops by nudging destinations
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_vertices
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    perm = rng.permutation(num_vertices)
    return from_edge_arrays(perm[src], perm[dst], num_vertices)


def powerlaw_family(
    vertex_counts: List[int],
    num_edges: int,
    exponent: float = 2.1,
    seed: int = 7,
) -> List[CSRGraph]:
    """The G1..Gn family of Fig. 11: fixed |E|, growing |V| and skewness.

    The paper uses 1.9M edges and |V| in {10k, 12k, 16k, 20k, 40k, 80k};
    callers pass a scaled-down version of those counts.
    """
    return [
        powerlaw_graph(n, num_edges, exponent=exponent, seed=seed + i)
        for i, n in enumerate(vertex_counts)
    ]


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    symmetric: bool = True,
) -> CSRGraph:
    """Graph500-style RMAT generator (analog of graph500-scale19).

    ``scale`` gives ``2**scale`` vertices and ``edge_factor * |V|`` edges,
    recursively placed in quadrants with probabilities (a, b, c, d).
    """
    if scale < 1 or scale > 24:
        raise GraphError("rmat scale must be in [1, 24]")
    d = 1.0 - a - b - c
    if d < 0:
        raise GraphError("RMAT probabilities must sum to at most 1")
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=INDEX_DTYPE)
    dst = np.zeros(m, dtype=INDEX_DTYPE)
    for bit in range(scale):
        r = rng.random(m)
        go_right = (r >= a + c) & (r < a + b + c) | (r >= a + b + c)
        go_down = (r >= a) & (r < a + c) | (r >= a + b + c)
        # quadrant picks: a=top-left, b=top-right, c=bottom-left, d=bottom-right
        src |= (go_down.astype(INDEX_DTYPE)) << bit
        dst |= (go_right.astype(INDEX_DTYPE)) << bit
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % n
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return from_edge_arrays(src, dst, n, dedupe=True)


def road_grid_graph(
    side: int, seed: Optional[int] = None, drop_fraction: float = 0.05
) -> CSRGraph:
    """Near-regular 2-D lattice analog of roadNet-CA / road-central.

    Road networks have huge |V|, tiny average degree (< 3) and almost no
    skew; a 4-neighbor grid with a few edges dropped reproduces that
    degree profile.
    """
    if side < 2:
        raise GraphError("road grid needs side >= 2")
    rng = _rng(seed)
    n = side * side
    idx = np.arange(n).reshape(side, side)
    right_src = idx[:, :-1].ravel()
    right_dst = idx[:, 1:].ravel()
    down_src = idx[:-1, :].ravel()
    down_dst = idx[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    if drop_fraction > 0:
        keep = rng.random(src.size) >= drop_fraction
        src, dst = src[keep], dst[keep]
    src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return from_edge_arrays(src, dst, n)


def dense_community_graph(
    num_vertices: int,
    avg_degree: int,
    hub_fraction: float = 0.02,
    hub_boost: float = 40.0,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Small-|V|, dense, skewed graph analog of bio-human-gene1/bio-mouse.

    The bio graphs have average degree over 600 with heavy hubs. We sample
    edges with a small fraction of vertices boosted to hub status.
    """
    if num_vertices < 2 or avg_degree < 1:
        raise GraphError("dense_community_graph needs >=2 vertices, degree >=1")
    rng = _rng(seed)
    m = num_vertices * avg_degree // 2
    weights = np.ones(num_vertices)
    hubs = rng.choice(
        num_vertices, size=max(1, int(hub_fraction * num_vertices)), replace=False
    )
    weights[hubs] = hub_boost
    prob = weights / weights.sum()
    src = rng.choice(num_vertices, size=m, p=prob)
    dst = rng.choice(num_vertices, size=m, p=prob)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_vertices
    src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return from_edge_arrays(src, dst, num_vertices, dedupe=True)


def community_graph(
    num_communities: int,
    community_size: int,
    intra_edges: int,
    inter_edges: int,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Planted-community graph with locality-encoding labels.

    Vertices of one community occupy a contiguous id block and most
    edges stay inside their block, so the *labeling itself* carries the
    community structure — the property Section V-A notes of the
    benchmark datasets ("reordered to reveal community structures").
    Shuffling the labels destroys cache locality without changing the
    topology; see :mod:`repro.graph.reorder` and the reordering
    ablation benchmark.
    """
    if num_communities < 1 or community_size < 2:
        raise GraphError(
            "community graph needs >=1 community of >=2 vertices"
        )
    if intra_edges < 1 or inter_edges < 0:
        raise GraphError("need >=1 intra edge and >=0 inter edges")
    rng = _rng(seed)
    n = num_communities * community_size
    srcs, dsts = [], []
    for c in range(num_communities):
        base = c * community_size
        srcs.append(rng.integers(0, community_size, intra_edges) + base)
        dsts.append(rng.integers(0, community_size, intra_edges) + base)
    if inter_edges:
        srcs.append(rng.integers(0, n, inter_edges))
        dsts.append(rng.integers(0, n, inter_edges))
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    return from_edge_arrays(
        np.concatenate([src, dst]), np.concatenate([dst, src]), n,
        dedupe=True,
    )


def star_graph(num_leaves: int) -> CSRGraph:
    """One hub connected to ``num_leaves`` leaves (maximal imbalance)."""
    if num_leaves < 1:
        raise GraphError("star graph needs at least one leaf")
    hub = np.zeros(num_leaves, dtype=INDEX_DTYPE)
    leaves = np.arange(1, num_leaves + 1, dtype=INDEX_DTYPE)
    src = np.concatenate([hub, leaves])
    dst = np.concatenate([leaves, hub])
    return from_edge_arrays(src, dst, num_leaves + 1)


def chain_graph(num_vertices: int) -> CSRGraph:
    """A bidirectional path graph (degree <= 2 everywhere)."""
    if num_vertices < 2:
        raise GraphError("chain needs at least 2 vertices")
    a = np.arange(num_vertices - 1, dtype=INDEX_DTYPE)
    b = a + 1
    src = np.concatenate([a, b])
    dst = np.concatenate([b, a])
    return from_edge_arrays(src, dst, num_vertices)


def complete_graph(num_vertices: int) -> CSRGraph:
    """All-pairs directed graph (perfectly balanced, dense)."""
    if num_vertices < 2:
        raise GraphError("complete graph needs at least 2 vertices")
    src, dst = np.meshgrid(
        np.arange(num_vertices), np.arange(num_vertices), indexing="ij"
    )
    mask = src != dst
    return from_edge_arrays(src[mask].ravel(), dst[mask].ravel(), num_vertices)


def random_graph(
    num_vertices: int, num_edges: int, seed: Optional[int] = None
) -> CSRGraph:
    """Uniform Erdos-Renyi-style random directed graph."""
    if num_vertices < 2:
        raise GraphError("random graph needs at least 2 vertices")
    rng = _rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_vertices
    return from_edge_arrays(src, dst, num_vertices, dedupe=True)


def networkx_powerlaw_graph(
    num_vertices: int, edges_per_vertex: int, seed: int = 0
) -> CSRGraph:
    """The literal NetworkX power-law cluster generator the paper cites.

    Provided for parity with Section V-B, which names "the NetworkX
    Power-law graph generator"; the faster :func:`powerlaw_graph` is used
    for large sweeps.
    """
    import networkx as nx

    from repro.graph.builder import from_networkx

    g = nx.powerlaw_cluster_graph(
        num_vertices, max(1, edges_per_vertex), 0.1, seed=seed
    )
    return from_networkx(g)
