"""Vertex reordering: the static locality lever.

Section V-A notes the benchmark graphs are "reordered to reveal
community structures", which is why CC converges fast and why edge
access locality matters to every schedule (the authors' CR2 work [20]
is an entire paper on this). These utilities provide the two standard
reorderings plus permutation plumbing, so locality effects can be
studied on the simulator (see the reordering ablation benchmark).
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph, INDEX_DTYPE


def apply_permutation(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel vertices: new id of vertex ``v`` is ``perm[v]``."""
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    n = graph.num_vertices
    if perm.shape != (n,):
        raise GraphError(f"permutation must have length {n}")
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise GraphError("perm must be a permutation of 0..n-1")
    src = perm[graph.edge_sources()]
    dst = perm[graph.col_idx]
    return from_edge_arrays(src, dst, n, weights=graph.weights.copy())


def degree_order(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """Permutation placing high-degree vertices first (hub clustering).

    Returns ``perm`` for :func:`apply_permutation`: hubs get the
    smallest new ids, so their (many) adjacency entries concentrate at
    the front of the edge array and hot property cache lines coincide.
    """
    order = np.argsort(
        -graph.degrees if descending else graph.degrees, kind="stable"
    )
    perm = np.empty(graph.num_vertices, dtype=INDEX_DTYPE)
    perm[order] = np.arange(graph.num_vertices)
    return perm


def bfs_order(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """BFS (RCM-flavored) permutation: neighbors get nearby ids.

    Unreached vertices (other components) are appended in id order;
    components discovered later start from their smallest original id.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=INDEX_DTYPE)
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range [0, {n})")
    visited = np.zeros(n, dtype=bool)
    order = []
    queue = deque([source])
    visited[source] = True
    pending = iter(range(n))
    while len(order) < n:
        if not queue:
            for v in pending:
                if not visited[v]:
                    visited[v] = True
                    queue.append(v)
                    break
            else:  # pragma: no cover - loop invariant
                break
        v = queue.popleft()
        order.append(v)
        for u in graph.neighbors(v):
            u = int(u)
            if not visited[u]:
                visited[u] = True
                queue.append(u)
    perm = np.empty(n, dtype=INDEX_DTYPE)
    perm[np.asarray(order)] = np.arange(n)
    return perm


def random_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Adversarial baseline: destroy whatever locality the labels had."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(INDEX_DTYPE)


def locality_score(graph: CSRGraph) -> float:
    """Mean |src - dst| gap normalized by |V| (lower = more local).

    A cheap proxy for how well vertex ids predict cache proximity of
    the properties an edge touches.
    """
    if graph.num_edges == 0 or graph.num_vertices == 0:
        return 0.0
    gap = np.abs(
        graph.edge_sources().astype(np.int64) - graph.col_idx
    ).mean()
    return float(gap / graph.num_vertices)
