"""Compressed Sparse Row graph storage.

CSR is the storage format the paper's Weaver unit assumes: edges of a
vertex are stored consecutively in an edge array, and an offset array
(``row_ptr``) gives, for each vertex, the start of its neighbor run. The
triple the Weaver registers — (base vertex id, start location, degree) —
is exactly ``(v, row_ptr[v], row_ptr[v + 1] - row_ptr[v])``.

The class is deliberately a thin, validated wrapper over three numpy
arrays so that simulator kernels can address the raw arrays directly for
cache modeling.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

INDEX_DTYPE = np.int64
WEIGHT_DTYPE = np.float64


class CSRGraph:
    """A directed graph in Compressed Sparse Row form.

    Parameters
    ----------
    row_ptr:
        Offset array of length ``num_vertices + 1``; monotone
        non-decreasing, ``row_ptr[0] == 0`` and
        ``row_ptr[-1] == num_edges``.
    col_idx:
        Destination vertex of each edge, length ``num_edges``.
    weights:
        Optional per-edge weights, length ``num_edges``. When omitted,
        unit weights are materialized lazily on first access.
    """

    __slots__ = ("row_ptr", "col_idx", "_weights", "_reverse")

    def __init__(
        self,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        row_ptr = np.ascontiguousarray(row_ptr, dtype=INDEX_DTYPE)
        col_idx = np.ascontiguousarray(col_idx, dtype=INDEX_DTYPE)
        if row_ptr.ndim != 1 or col_idx.ndim != 1:
            raise GraphError("row_ptr and col_idx must be 1-D arrays")
        if row_ptr.size == 0:
            raise GraphError("row_ptr must have at least one entry")
        if row_ptr[0] != 0:
            raise GraphError(f"row_ptr[0] must be 0, got {row_ptr[0]}")
        if row_ptr[-1] != col_idx.size:
            raise GraphError(
                f"row_ptr[-1] ({row_ptr[-1]}) must equal the number of "
                f"edges ({col_idx.size})"
            )
        if np.any(np.diff(row_ptr) < 0):
            raise GraphError("row_ptr must be monotone non-decreasing")
        n = row_ptr.size - 1
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise GraphError(
                f"col_idx entries must lie in [0, {n}), found range "
                f"[{col_idx.min()}, {col_idx.max()}]"
            )
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=WEIGHT_DTYPE)
            if weights.shape != col_idx.shape:
                raise GraphError(
                    f"weights shape {weights.shape} must match col_idx "
                    f"shape {col_idx.shape}"
                )
        self.row_ptr = row_ptr
        self.col_idx = col_idx
        self._weights = weights
        self._reverse: Optional["CSRGraph"] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.row_ptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.col_idx.size

    @property
    def weights(self) -> np.ndarray:
        """Per-edge weights; unit weights are created on demand."""
        if self._weights is None:
            self._weights = np.ones(self.num_edges, dtype=WEIGHT_DTYPE)
        return self._weights

    @property
    def has_weights(self) -> bool:
        """Whether explicit weights were supplied at construction."""
        return self._weights is not None

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex as a numpy array."""
        return np.diff(self.row_ptr)

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def neighbor_range(self, v: int) -> Tuple[int, int]:
        """``(start, end)`` offsets of ``v``'s edges in the edge array.

        This is the exact pair the registration stage computes before
        issuing ``WEAVER_REG`` (Fig. 9 line 8 of the paper).
        """
        self._check_vertex(v)
        return int(self.row_ptr[v]), int(self.row_ptr[v + 1])

    def neighbors(self, v: int) -> np.ndarray:
        """View of the neighbor vertex ids of ``v``."""
        start, end = self.neighbor_range(v)
        return self.col_idx[start:end]

    def edge_weights(self, v: int) -> np.ndarray:
        """View of the weights of ``v``'s edges."""
        start, end = self.neighbor_range(v)
        return self.weights[start:end]

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """CSR of the transposed graph (incoming edges become outgoing).

        Pull-direction gathering traverses incoming edges; the framework
        obtains them from this transpose. The result is cached because
        the paper's framework builds it once per graph, not per kernel.
        """
        if self._reverse is None:
            n = self.num_vertices
            counts = np.bincount(self.col_idx, minlength=n)
            rev_ptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
            np.cumsum(counts, out=rev_ptr[1:])
            rev_col = np.empty(self.num_edges, dtype=INDEX_DTYPE)
            rev_w = np.empty(self.num_edges, dtype=WEIGHT_DTYPE)
            cursor = rev_ptr[:-1].copy()
            src_of_edge = self.edge_sources()
            w = self.weights
            order = np.argsort(self.col_idx, kind="stable")
            pos = rev_ptr[:-1].copy()
            # Stable counting-sort placement keeps each vertex's incoming
            # edges ordered by source id, which the ordered-scan design
            # decision relies on.
            rev_col[:] = src_of_edge[order]
            rev_w[:] = w[order]
            del cursor, pos
            self._reverse = CSRGraph(rev_ptr, rev_col, rev_w)
            self._reverse._reverse = self
        return self._reverse

    def edge_sources(self) -> np.ndarray:
        """Source vertex of each edge, aligned with ``col_idx``.

        Edge mapping (S_em) needs both endpoints of an edge, which is why
        the paper charges it double edge-memory reads; this array is the
        second read's target.
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=INDEX_DTYPE), self.degrees
        )

    def undirected(self) -> "CSRGraph":
        """Symmetrized copy: every edge gets its reverse edge added."""
        src = self.edge_sources()
        dst = self.col_idx
        w = self.weights
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        all_w = np.concatenate([w, w])
        from repro.graph.builder import from_edge_arrays

        return from_edge_arrays(
            all_src, all_dst, self.num_vertices, weights=all_w, dedupe=True
        )

    def is_symmetric(self) -> bool:
        """True when for every edge (u, v) the edge (v, u) also exists."""
        fwd = set(zip(self.edge_sources().tolist(), self.col_idx.tolist()))
        return all((v, u) in fwd for (u, v) in fwd)

    # ------------------------------------------------------------------
    # Iteration and formatting
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` triples in CSR order."""
        w = self.weights
        src = self.edge_sources()
        for e in range(self.num_edges):
            yield int(src[e]), int(self.col_idx[e]), float(w[e])

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.row_ptr, other.row_ptr)
            and np.array_equal(self.col_idx, other.col_idx)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)
