"""Graph persistence: NumPy archives and plain edge-list text files.

A reproduction repo gets pointed at people's own graphs sooner or
later; these helpers cover the two formats that actually occur — a
compact ``.npz`` for round-tripping CSR exactly, and whitespace
edge-list text (``src dst [weight]`` per line, ``#`` comments), the
format networkrepository/SNAP dumps use.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph

PathLike = Union[str, Path]


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Write a CSR graph to a ``.npz`` archive."""
    # Capture the flag before touching .weights (which materializes
    # lazy unit weights).
    has_weights = graph.has_weights
    np.savez_compressed(
        path,
        row_ptr=graph.row_ptr,
        col_idx=graph.col_idx,
        weights=graph.weights,
        has_weights=np.asarray([has_weights]),
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a CSR graph written by :func:`save_npz`."""
    try:
        data = np.load(path)
    except (OSError, ValueError) as exc:
        raise GraphError(f"cannot read graph archive {path}: {exc}")
    for key in ("row_ptr", "col_idx"):
        if key not in data:
            raise GraphError(f"{path} is missing array {key!r}")
    weights = None
    if "weights" in data and bool(data.get("has_weights", [True])[0]):
        weights = data["weights"]
    return CSRGraph(data["row_ptr"], data["col_idx"], weights)


def save_edge_list(graph: CSRGraph, path: PathLike,
                   include_weights: bool = None) -> None:
    """Write ``src dst [weight]`` lines (weights only when explicit)."""
    if include_weights is None:
        include_weights = graph.has_weights
    with open(path, "w") as fh:
        fh.write(f"# vertices {graph.num_vertices} "
                 f"edges {graph.num_edges}\n")
        for src, dst, w in graph.edges():
            if include_weights:
                fh.write(f"{src} {dst} {w}\n")
            else:
                fh.write(f"{src} {dst}\n")


def load_edge_list(path: PathLike,
                   num_vertices: int = None) -> CSRGraph:
    """Parse ``src dst [weight]`` text; ``#`` lines are comments.

    A ``# vertices N ...`` header (as written by
    :func:`save_edge_list`) fixes the vertex count for graphs with
    isolated trailing vertices.
    """
    srcs, dsts, weights = [], [], []
    saw_weight = False
    header_vertices = None
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                tokens = line[1:].split()
                if len(tokens) >= 2 and tokens[0] == "vertices":
                    try:
                        header_vertices = int(tokens[1])
                    except ValueError:
                        pass
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 'src dst [weight]', "
                    f"got {line!r}"
                )
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
            except ValueError:
                raise GraphError(
                    f"{path}:{lineno}: vertex ids must be integers"
                )
            if len(parts) == 3:
                saw_weight = True
                weights.append(float(parts[2]))
            else:
                weights.append(1.0)
    n = num_vertices if num_vertices is not None else header_vertices
    return from_edge_arrays(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        n,
        np.asarray(weights) if saw_weight else None,
    )
