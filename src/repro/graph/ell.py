"""Hybrid ELL/CSR storage (Section III-D's "hybrid formats like ELL").

ELL stores up to ``width`` neighbors per vertex in a dense, column-major
(n x width) slab — perfectly regular, so naive mapping runs it with zero
imbalance and fully coalesced loads. Edges beyond the width land in a
CSR *residue*, which is exactly the sparse leftover the paper says
SparseWeaver can weave ("applying its functionality to the CSR
subgraph"). The hybrid schedule in :mod:`repro.sched.hybrid_ell`
consumes this split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, INDEX_DTYPE, WEIGHT_DTYPE


@dataclass
class HybridELL:
    """Dense ELL slab + CSR residue of one graph."""

    width: int
    #: column-major neighbor slab, shape (width, n); -1 pads short rows
    ell_cols: np.ndarray
    #: parallel weights, shape (width, n)
    ell_weights: np.ndarray
    #: edges beyond ``width`` per vertex
    residue: CSRGraph
    #: the original graph (for reference / functional checks)
    source: CSRGraph

    @property
    def num_vertices(self) -> int:
        """Vertices of the underlying graph."""
        return self.source.num_vertices

    @property
    def ell_edges(self) -> int:
        """Edges stored in the dense slab."""
        return int((self.ell_cols >= 0).sum())

    @property
    def residue_edges(self) -> int:
        """Edges in the CSR residue."""
        return self.residue.num_edges

    def coverage(self) -> float:
        """Fraction of edges the regular slab captures."""
        total = self.source.num_edges
        return self.ell_edges / total if total else 1.0


def to_hybrid_ell(graph: CSRGraph,
                  width: Optional[int] = None) -> HybridELL:
    """Split a CSR graph into an ELL slab of ``width`` plus residue.

    The default width is the mean degree rounded up — the classic
    heuristic balancing slab padding against residue size.
    """
    n = graph.num_vertices
    if width is None:
        avg = graph.num_edges / max(1, n)
        width = max(1, int(np.ceil(avg)))
    if width < 1:
        raise GraphError("ELL width must be at least 1")

    ell_cols = np.full((width, n), -1, dtype=INDEX_DTYPE)
    ell_weights = np.zeros((width, n), dtype=WEIGHT_DTYPE)
    res_src, res_dst, res_w = [], [], []
    weights = graph.weights
    for v in range(n):
        start, end = graph.neighbor_range(v)
        take = min(width, end - start)
        if take:
            ell_cols[:take, v] = graph.col_idx[start:start + take]
            ell_weights[:take, v] = weights[start:start + take]
        for eid in range(start + take, end):
            res_src.append(v)
            res_dst.append(int(graph.col_idx[eid]))
            res_w.append(float(weights[eid]))

    from repro.graph.builder import from_edge_arrays

    residue = from_edge_arrays(
        np.asarray(res_src, dtype=INDEX_DTYPE),
        np.asarray(res_dst, dtype=INDEX_DTYPE),
        n,
        np.asarray(res_w, dtype=WEIGHT_DTYPE),
    )
    return HybridELL(width=width, ell_cols=ell_cols,
                     ell_weights=ell_weights, residue=residue,
                     source=graph)


def hybrid_covers_all_edges(hybrid: HybridELL) -> bool:
    """Sanity predicate: slab + residue reproduce the original edges."""
    rebuilt = []
    n = hybrid.num_vertices
    for v in range(n):
        for j in range(hybrid.width):
            u = int(hybrid.ell_cols[j, v])
            if u >= 0:
                rebuilt.append((v, u, float(hybrid.ell_weights[j, v])))
    rebuilt.extend(
        (int(s), int(d), float(w)) for s, d, w in hybrid.residue.edges()
    )
    original = sorted(
        (int(s), int(d), float(w)) for s, d, w in hybrid.source.edges()
    )
    return sorted(rebuilt) == original
