"""Graph substrate: storage formats, builders, generators and dataset analogs.

The paper evaluates on CSR-stored real-world graphs. This subpackage
provides the :class:`~repro.graph.csr.CSRGraph` storage format, edge-list
builders, synthetic generators that mimic the paper's nine datasets, the
storage-format interface (``get_neighbor`` / ``get_edge``) used by the
frontend, and degree/skewness metrics used by the skewness study (Fig. 11).
"""

from repro.graph.csr import CSRGraph
from repro.graph.builder import from_edge_list, from_adjacency, to_edge_list
from repro.graph.generators import (
    powerlaw_graph,
    powerlaw_family,
    rmat_graph,
    road_grid_graph,
    dense_community_graph,
    community_graph,
    star_graph,
    chain_graph,
    complete_graph,
    random_graph,
)
from repro.graph.datasets import DatasetSpec, dataset, dataset_names, PAPER_DATASETS
from repro.graph.metrics import (
    degree_skewness,
    gini_coefficient,
    degree_histogram,
    edge_fraction_by_degree,
)
from repro.graph.formats import StorageFormatInterface, CSRFormatInterface
from repro.graph.io import save_npz, load_npz, save_edge_list, load_edge_list

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "from_adjacency",
    "to_edge_list",
    "powerlaw_graph",
    "powerlaw_family",
    "rmat_graph",
    "road_grid_graph",
    "dense_community_graph",
    "community_graph",
    "star_graph",
    "chain_graph",
    "complete_graph",
    "random_graph",
    "DatasetSpec",
    "dataset",
    "dataset_names",
    "PAPER_DATASETS",
    "degree_skewness",
    "gini_coefficient",
    "degree_histogram",
    "edge_fraction_by_degree",
    "StorageFormatInterface",
    "CSRFormatInterface",
    "save_npz",
    "load_npz",
    "save_edge_list",
    "load_edge_list",
]
