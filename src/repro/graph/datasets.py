"""Scaled synthetic analogs of the paper's nine datasets (Table III).

The paper evaluates on real-world graphs from networkrepository.com with
up to 229M edges; a pure-Python cycle simulator cannot traverse graphs of
that size, and this offline environment cannot download them. Each analog
below preserves the dataset's *shape* — the relation between |V| and |E|,
the skew of the degree distribution, and the family (dense bio matrix,
sparse near-regular road network, power-law web/social graph) — at a size
the simulator handles in seconds. Paper-scale |V|/|E| are recorded on the
spec for reporting beside the analog's actual size.

The ``scale`` knob multiplies analog sizes for users with more time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph import generators as gen


@dataclass(frozen=True)
class DatasetSpec:
    """One Table III row: paper-scale facts plus our analog recipe."""

    key: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    family: str
    build: Callable[[float], CSRGraph]

    def instantiate(self, scale: float = 1.0) -> CSRGraph:
        """Build the analog graph at the given size multiplier."""
        if scale <= 0:
            raise GraphError("dataset scale must be positive")
        return self.build(scale)


def _bio_human(scale: float) -> CSRGraph:
    # 22k vertices, 24.7M edges: tiny |V|, avg degree ~1100, skewed.
    n = max(64, int(220 * scale))
    return gen.dense_community_graph(n, avg_degree=max(8, int(90 * scale)),
                                     hub_boost=60.0, seed=11)


def _bio_mouse(scale: float) -> CSRGraph:
    # 45k vertices, 29M edges: like bio-human but a bit sparser.
    n = max(64, int(450 * scale))
    return gen.dense_community_graph(n, avg_degree=max(6, int(55 * scale)),
                                     hub_boost=50.0, seed=13)


def _road_ca(scale: float) -> CSRGraph:
    # 1.97M vertices, 553k edges in the table: degree ~ 2, regular.
    side = max(8, int(40 * scale ** 0.5))
    return gen.road_grid_graph(side, seed=17)


def _road_central(scale: float) -> CSRGraph:
    # 14M vertices, 3.4M edges: the larger road network.
    side = max(12, int(70 * scale ** 0.5))
    return gen.road_grid_graph(side, seed=19)


def _graph500(scale: float) -> CSRGraph:
    # 335k vertices, 15.5M edges, RMAT (the actual graph500 generator).
    sc = max(6, int(8 + scale))
    return gen.rmat_graph(sc, edge_factor=16, seed=23)


def _collab(scale: float) -> CSRGraph:
    # 372k vertices, 49M edges: dense collaboration network.
    n = max(128, int(900 * scale))
    return gen.powerlaw_graph(n, max(512, int(14000 * scale)),
                              exponent=2.0, seed=29)


def _hollywood(scale: float) -> CSRGraph:
    # 2.18M vertices, 229M edges: the heaviest power-law graph.
    n = max(256, int(1600 * scale))
    return gen.powerlaw_graph(n, max(1024, int(24000 * scale)),
                              exponent=1.9, seed=31)


def _web_uk(scale: float) -> CSRGraph:
    # 130k vertices, 23.5M edges: small |V| dense web crawl.
    n = max(96, int(400 * scale))
    return gen.powerlaw_graph(n, max(512, int(10000 * scale)),
                              exponent=1.95, seed=37)


def _web_wiki(scale: float) -> CSRGraph:
    # 2.94M vertices, 104.7M edges: large sparse-ish power-law graph.
    n = max(256, int(2400 * scale))
    return gen.powerlaw_graph(n, max(1024, int(16000 * scale)),
                              exponent=2.2, seed=41)


PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "bio-human": DatasetSpec(
        "bio-human", "bio-human-gene1 (D_bh)", 22_284, 24_691_926,
        "dense-bio", _bio_human),
    "bio-mouse": DatasetSpec(
        "bio-mouse", "bio-mouse-gene (D_bm)", 45_102, 29_012_392,
        "dense-bio", _bio_mouse),
    "road-ca": DatasetSpec(
        "road-ca", "roadNet-CA (D_rn)", 1_971_282, 553_321,
        "road", _road_ca),
    "road-central": DatasetSpec(
        "road-central", "road-central (D_rc)", 14_081_817, 3_386_682,
        "road", _road_central),
    "graph500": DatasetSpec(
        "graph500", "graph500-scale19 (D_g500)", 335_319, 15_459_350,
        "rmat", _graph500),
    "collab": DatasetSpec(
        "collab", "COLLAB (D_co)", 372_475, 49_144_316,
        "powerlaw", _collab),
    "hollywood": DatasetSpec(
        "hollywood", "hollywood-2011 (D_hw)", 2_180_653, 228_985_632,
        "powerlaw", _hollywood),
    "web-uk": DatasetSpec(
        "web-uk", "web-uk-2005 (D_uk)", 129_633, 23_488_098,
        "powerlaw", _web_uk),
    "web-wiki": DatasetSpec(
        "web-wiki", "web-wikipedia (D_wk)", 2_936_414, 104_673_033,
        "powerlaw", _web_wiki),
}

# Short aliases matching the paper's D_* notation.
_ALIASES = {
    "d_bh": "bio-human", "d_bm": "bio-mouse", "d_rn": "road-ca",
    "d_rc": "road-central", "d_g500": "graph500", "d_co": "collab",
    "d_hw": "hollywood", "d_uk": "web-uk", "d_wk": "web-wiki",
}


def dataset_names() -> List[str]:
    """The nine dataset keys in Table III order."""
    return list(PAPER_DATASETS)


#: Memoized dataset builds.  Generators are deterministic (fixed
#: seeds), so the same (key, scale) always yields the same arrays;
#: batch runs re-request the same few graphs dozens of times.  Callers
#: treat graphs as read-only (transforms like ``reverse()`` /
#: ``undirected()`` return new objects), so sharing is safe.
_DATASET_CACHE: dict = {}
_DATASET_CACHE_MAX = 32


def dataset(name: str, scale: float = 1.0) -> CSRGraph:
    """Instantiate a dataset analog by key or ``D_*`` alias."""
    key = _ALIASES.get(name.lower(), name)
    if key not in PAPER_DATASETS:
        raise GraphError(
            f"unknown dataset {name!r}; known: {sorted(PAPER_DATASETS)}"
        )
    cache_key = (key, scale)
    graph = _DATASET_CACHE.get(cache_key)
    if graph is None:
        graph = PAPER_DATASETS[key].instantiate(scale)
        if len(_DATASET_CACHE) >= _DATASET_CACHE_MAX:
            _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
        _DATASET_CACHE[cache_key] = graph
    return graph


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` for a key or alias."""
    key = _ALIASES.get(name.lower(), name)
    if key not in PAPER_DATASETS:
        raise GraphError(
            f"unknown dataset {name!r}; known: {sorted(PAPER_DATASETS)}"
        )
    return PAPER_DATASETS[key]
