"""Builders converting edge lists and adjacency structures to CSR.

All construction funnels through :func:`from_edge_arrays`, which sorts
edges by (source, destination) so that each vertex's neighbor run is
contiguous and ordered — the layout the Weaver's ordered scan expects.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, INDEX_DTYPE, WEIGHT_DTYPE


def from_edge_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: Optional[int] = None,
    weights: Optional[np.ndarray] = None,
    dedupe: bool = False,
) -> CSRGraph:
    """Build a CSR graph from parallel source/destination arrays.

    Parameters
    ----------
    src, dst:
        Parallel integer arrays giving directed edges ``src[i] -> dst[i]``.
    num_vertices:
        Total vertex count; inferred as ``max(id) + 1`` when omitted.
    weights:
        Optional parallel weight array.
    dedupe:
        Drop duplicate ``(src, dst)`` pairs, keeping the first weight.
    """
    src = np.asarray(src, dtype=INDEX_DTYPE)
    dst = np.asarray(dst, dtype=INDEX_DTYPE)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError("src and dst must be 1-D arrays of equal length")
    if weights is not None:
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
        if weights.shape != src.shape:
            raise GraphError("weights must be parallel to src/dst")
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphError("vertex ids must be non-negative")
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max())) + 1 if src.size else 0
    elif src.size and max(int(src.max()), int(dst.max())) >= num_vertices:
        raise GraphError(
            f"edge endpoint exceeds num_vertices={num_vertices}"
        )

    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if weights is not None:
        weights = weights[order]
    if dedupe and src.size:
        keep = np.ones(src.size, dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[keep], dst[keep]
        if weights is not None:
            weights = weights[keep]

    counts = np.bincount(src, minlength=num_vertices)
    row_ptr = np.zeros(num_vertices + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRGraph(row_ptr, dst, weights)


def from_edge_list(
    edges: Iterable[Sequence],
    num_vertices: Optional[int] = None,
    dedupe: bool = False,
) -> CSRGraph:
    """Build a CSR graph from an iterable of ``(src, dst)`` or
    ``(src, dst, weight)`` tuples."""
    edge_list = list(edges)
    if not edge_list:
        return CSRGraph(
            np.zeros((num_vertices or 0) + 1, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=INDEX_DTYPE),
        )
    widths = {len(e) for e in edge_list}
    if widths <= {2}:
        src, dst = zip(*edge_list)
        weights = None
    elif widths <= {3}:
        src, dst, weights = zip(*edge_list)
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
    else:
        raise GraphError(
            "edges must be uniformly (src, dst) or (src, dst, weight)"
        )
    return from_edge_arrays(
        np.asarray(src), np.asarray(dst), num_vertices, weights, dedupe
    )


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]],
    num_vertices: Optional[int] = None,
) -> CSRGraph:
    """Build a CSR graph from a ``{vertex: [neighbors]}`` mapping."""
    src, dst = [], []
    for u, nbrs in adjacency.items():
        for v in nbrs:
            src.append(u)
            dst.append(v)
    if num_vertices is None and adjacency:
        seen = max(adjacency)
        if dst:
            seen = max(seen, max(dst))
        num_vertices = int(seen) + 1
    return from_edge_arrays(
        np.asarray(src, dtype=INDEX_DTYPE),
        np.asarray(dst, dtype=INDEX_DTYPE),
        num_vertices,
    )


def to_edge_list(graph: CSRGraph) -> list:
    """Materialize the edge list of a CSR graph as ``(src, dst, weight)``."""
    return list(graph.edges())


def from_networkx(nx_graph, weight_attr: Optional[str] = None) -> CSRGraph:
    """Convert a ``networkx`` graph (nodes must be integers 0..n-1).

    Undirected networkx graphs are symmetrized, matching the paper's use
    of symmetric benchmark datasets (Section V-G).
    """
    import networkx as nx

    n = nx_graph.number_of_nodes()
    nodes = sorted(nx_graph.nodes())
    if nodes != list(range(n)):
        relabel = {v: i for i, v in enumerate(nodes)}
        nx_graph = nx.relabel_nodes(nx_graph, relabel)
    src, dst, weights = [], [], []
    directed = nx_graph.is_directed()
    for u, v, data in nx_graph.edges(data=True):
        w = float(data.get(weight_attr, 1.0)) if weight_attr else 1.0
        src.append(u)
        dst.append(v)
        weights.append(w)
        if not directed:
            src.append(v)
            dst.append(u)
            weights.append(w)
    return from_edge_arrays(
        np.asarray(src, dtype=INDEX_DTYPE),
        np.asarray(dst, dtype=INDEX_DTYPE),
        n,
        np.asarray(weights, dtype=WEIGHT_DTYPE),
        dedupe=True,
    )
