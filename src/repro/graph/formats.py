"""Storage-format interface: ``get_neighbor`` and ``get_edge``.

Section IV of the paper defines a two-method storage-format interface the
frontend compiler programs against, so that Weaver-based kernels work with
any format that stores a vertex's edges consecutively and exposes an
offset array (CSR, Tigr, CR2, or the CSR part of a hybrid ELL split).

``get_neighbor(v)`` returns the (start, end) run of a vertex's edges —
the registration-stage input. ``get_edge(eid)`` returns the
(src, dst, weight) record for an edge id — the distribution-stage lookup.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


class StorageFormatInterface(ABC):
    """Abstract storage-format interface consumed by the frontend."""

    @property
    @abstractmethod
    def num_vertices(self) -> int:
        """Number of vertices addressable through this format."""

    @property
    @abstractmethod
    def num_edges(self) -> int:
        """Number of edge records addressable through this format."""

    @abstractmethod
    def get_neighbor(self, vertex: int) -> Tuple[int, int]:
        """Return ``(start_eid, end_eid)`` of the vertex's edge run."""

    @abstractmethod
    def get_edge(self, eid: int) -> Tuple[int, int, float]:
        """Return ``(src, dst, weight)`` of edge ``eid``."""


class CSRFormatInterface(StorageFormatInterface):
    """The canonical CSR implementation of the format interface."""

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph
        self._sources = graph.edge_sources()

    @property
    def graph(self) -> CSRGraph:
        """The underlying CSR graph."""
        return self._graph

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    def get_neighbor(self, vertex: int) -> Tuple[int, int]:
        return self._graph.neighbor_range(vertex)

    def get_edge(self, eid: int) -> Tuple[int, int, float]:
        if not 0 <= eid < self.num_edges:
            raise GraphError(f"edge id {eid} out of range [0, {self.num_edges})")
        return (
            int(self._sources[eid]),
            int(self._graph.col_idx[eid]),
            float(self._graph.weights[eid]),
        )


class SplitVertexFormatInterface(StorageFormatInterface):
    """CSR with high-degree vertices split into bounded-degree segments.

    Section III-D notes SparseWeaver "can accommodate non-consecutive
    labeling by splitting vertices and registering split vertices as
    separate entries" (the Tigr transformation). This interface exposes
    the split view: logical vertices whose degree exceeds ``max_degree``
    appear as several registration entries, all mapping back to the same
    physical vertex through :meth:`physical_vertex`.
    """

    def __init__(self, graph: CSRGraph, max_degree: int) -> None:
        if max_degree < 1:
            raise GraphError("max_degree must be at least 1")
        self._graph = graph
        self._sources = graph.edge_sources()
        self._max_degree = max_degree
        starts, ends, owners = [], [], []
        for v in range(graph.num_vertices):
            s, e = graph.neighbor_range(v)
            if s == e:
                starts.append(s)
                ends.append(e)
                owners.append(v)
                continue
            for seg in range(s, e, max_degree):
                starts.append(seg)
                ends.append(min(seg + max_degree, e))
                owners.append(v)
        self._starts = np.asarray(starts, dtype=np.int64)
        self._ends = np.asarray(ends, dtype=np.int64)
        self._owners = np.asarray(owners, dtype=np.int64)

    @property
    def max_degree(self) -> int:
        """Per-split degree bound."""
        return self._max_degree

    @property
    def num_vertices(self) -> int:
        """Number of *split* vertices (registration entries)."""
        return self._starts.size

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    def physical_vertex(self, split_id: int) -> int:
        """Map a split vertex id back to the original vertex id."""
        if not 0 <= split_id < self.num_vertices:
            raise GraphError(f"split id {split_id} out of range")
        return int(self._owners[split_id])

    def get_neighbor(self, split_id: int) -> Tuple[int, int]:
        if not 0 <= split_id < self.num_vertices:
            raise GraphError(f"split id {split_id} out of range")
        return int(self._starts[split_id]), int(self._ends[split_id])

    def get_edge(self, eid: int) -> Tuple[int, int, float]:
        if not 0 <= eid < self.num_edges:
            raise GraphError(f"edge id {eid} out of range [0, {self.num_edges})")
        return (
            int(self._sources[eid]),
            int(self._graph.col_idx[eid]),
            float(self._graph.weights[eid]),
        )
