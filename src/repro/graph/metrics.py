"""Degree-distribution metrics used by the skewness study (Fig. 11).

The paper quantifies "skewness" per Zwillinger & Kokoska [54]: the
standardized third moment of the degree distribution. Higher skewness
means a longer hub tail, which is what defeats vertex mapping.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def degree_skewness(graph: CSRGraph) -> float:
    """Sample skewness (g1) of the out-degree distribution.

    Returns 0.0 for degenerate distributions (constant degree), matching
    the convention that a regular graph has no skew.
    """
    deg = graph.degrees.astype(np.float64)
    if deg.size == 0:
        return 0.0
    mu = deg.mean()
    sigma = deg.std()
    if sigma == 0.0:
        return 0.0
    return float(np.mean(((deg - mu) / sigma) ** 3))


def gini_coefficient(graph: CSRGraph) -> float:
    """Gini coefficient of the degree distribution (0 = balanced)."""
    deg = np.sort(graph.degrees.astype(np.float64))
    n = deg.size
    if n == 0 or deg.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2 * (index * deg).sum()) / (n * deg.sum()) - (n + 1) / n)


def degree_histogram(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """``(degrees, counts)`` of the out-degree distribution.

    This is the x/y data of Fig. 11a's degree-distribution panel.
    """
    deg = graph.degrees
    values, counts = np.unique(deg, return_counts=True)
    return values, counts


def edge_fraction_by_degree(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """``(degrees, fraction_of_edges)`` — the "edge fraction tail".

    Fig. 11a plots what fraction of all edges is owned by vertices of
    each degree; a long tail means a few hubs own most edges.
    """
    deg = graph.degrees
    values, counts = np.unique(deg, return_counts=True)
    total = graph.num_edges
    if total == 0:
        return values, np.zeros_like(values, dtype=np.float64)
    return values, (values * counts) / float(total)


def max_degree(graph: CSRGraph) -> int:
    """Largest out-degree (the supernode the skip signal targets)."""
    deg = graph.degrees
    return int(deg.max()) if deg.size else 0


def average_degree(graph: CSRGraph) -> float:
    """Mean out-degree."""
    if graph.num_vertices == 0:
        return 0.0
    return graph.num_edges / graph.num_vertices
