"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
carry, so EXPERIMENTS.md can paste paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

Number = Union[int, float]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Align a list of rows under headers."""
    table: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        table.append([_fmt(cell) for cell in row])
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(table[0])))
    lines.append("  ".join("-" * w for w in widths))
    for row in table[1:]:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[Number]],
    title: str = "",
) -> str:
    """Figure-style output: one column per x value, one row per series."""
    headers = [x_label] + [_fmt(x) for x in x_values]
    rows = [[name] + list(values) for name, values in series.items()]
    return format_table(headers, rows, title=title)


def format_bar_chart(
    values: Mapping[str, Number],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """ASCII horizontal bar chart (for terminal-friendly figures)."""
    if not values:
        return title
    peak = max(float(v) for v in values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, round(width * float(value) / peak))
        lines.append(
            f"{str(name).ljust(label_w)}  {bar} {_fmt(value)}{unit}"
        )
    return "\n".join(lines)


def format_breakdown(
    breakdowns: Mapping[str, Mapping[str, Number]],
    title: str = "",
    normalize: bool = False,
) -> str:
    """Stacked-bar-style output: rows = configurations, columns = parts
    (the Figs. 4/17/18 shape). ``normalize`` divides by each row total."""
    parts: List[str] = []
    for row in breakdowns.values():
        for key in row:
            if key not in parts:
                parts.append(key)
    headers = ["config"] + parts + ["total"]
    rows = []
    for name, row in breakdowns.items():
        total = sum(row.values())
        if normalize and total:
            cells = [row.get(p, 0) / total for p in parts]
            rows.append([name] + cells + [1.0])
        else:
            rows.append([name] + [row.get(p, 0) for p in parts] + [total])
    return format_table(headers, rows, title=title)
