"""Experiment runner shared by every benchmark module.

Each paper figure boils down to "run algorithm X under schedules S on
graphs G with configuration C; report cycles/speedups/breakdowns" —
this module is that loop, once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.frontend.framework import GraphProcessor, RunResult
from repro.frontend.udf import Algorithm
from repro.graph.csr import CSRGraph
from repro.sim.config import GPUConfig


@dataclass
class ExperimentResult:
    """Cycles per (graph, schedule) cell plus full run objects."""

    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    runs: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)

    def speedups(self, baseline: str = "vertex_map") -> Dict[str, Dict[str, float]]:
        """Per-graph speedups of every schedule over ``baseline``."""
        out: Dict[str, Dict[str, float]] = {}
        for graph_name, per_sched in self.cycles.items():
            base = per_sched[baseline]
            out[graph_name] = {
                sched: base / c if c else float("inf")
                for sched, c in per_sched.items()
            }
        return out

    def geomean_speedups(self, baseline: str = "vertex_map") -> Dict[str, float]:
        """Geometric-mean speedup per schedule across graphs."""
        per_graph = self.speedups(baseline)
        scheds = next(iter(per_graph.values())).keys() if per_graph else []
        return {
            sched: geomean([per_graph[g][sched] for g in per_graph])
            for sched in scheds
        }


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (1.0 for an empty sequence)."""
    values = [v for v in values]
    if not values:
        return 1.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def run_single(
    algorithm: Algorithm,
    graph: CSRGraph,
    schedule: str,
    config: Optional[GPUConfig] = None,
    max_iterations: Optional[int] = None,
    symmetrize: bool = False,
    **processor_kwargs,
) -> RunResult:
    """One (algorithm, graph, schedule) run."""
    proc = GraphProcessor(
        algorithm, schedule=schedule, config=config,
        symmetrize=symmetrize, **processor_kwargs,
    )
    return proc.run(graph, max_iterations=max_iterations)


def run_schedule_comparison(
    algorithm_factory: Callable[[], Algorithm],
    graphs: Dict[str, CSRGraph],
    schedules: Sequence[str],
    config: Optional[GPUConfig] = None,
    max_iterations: Optional[int] = None,
    symmetrize: bool = False,
) -> ExperimentResult:
    """The Fig. 10-style grid: every schedule on every graph.

    ``algorithm_factory`` is called per run so trials never share
    mutable state.
    """
    result = ExperimentResult()
    for graph_name, graph in graphs.items():
        result.cycles[graph_name] = {}
        result.runs[graph_name] = {}
        for sched in schedules:
            run = run_single(
                algorithm_factory(), graph, sched, config=config,
                max_iterations=max_iterations, symmetrize=symmetrize,
            )
            result.cycles[graph_name][sched] = run.stats.total_cycles
            result.runs[graph_name][sched] = run
    return result
