"""Experiment runner shared by every benchmark module.

Each paper figure boils down to "run algorithm X under schedules S on
graphs G with configuration C; report cycles/speedups/breakdowns" —
this module is that loop, once.
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.frontend.framework import GraphProcessor, RunResult
from repro.frontend.udf import Algorithm
from repro.graph.csr import CSRGraph
from repro.sim.config import GPUConfig


@dataclass
class ExperimentResult:
    """Cycles per (graph, schedule) cell plus full run objects.

    ``runs`` cells are full :class:`RunResult` objects on the serial
    path and :class:`~repro.runtime.cache.RunSummary` objects when the
    grid went through the batch engine — both expose ``.stats`` /
    ``.total_cycles``.
    """

    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    runs: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def speedups(self, baseline: str = "vertex_map") -> Dict[str, Dict[str, float]]:
        """Per-graph speedups of every schedule over ``baseline``."""
        out: Dict[str, Dict[str, float]] = {}
        for graph_name, per_sched in self.cycles.items():
            if baseline not in per_sched:
                raise ReproError(
                    f"baseline schedule {baseline!r} was not run for "
                    f"graph {graph_name!r}; available schedules: "
                    f"{sorted(per_sched)}"
                )
            base = per_sched[baseline]
            out[graph_name] = {
                sched: base / c if c else float("inf")
                for sched, c in per_sched.items()
            }
        return out

    def geomean_speedups(self, baseline: str = "vertex_map") -> Dict[str, float]:
        """Geometric-mean speedup per schedule across graphs."""
        per_graph = self.speedups(baseline)
        scheds = next(iter(per_graph.values())).keys() if per_graph else []
        return {
            sched: geomean([per_graph[g][sched] for g in per_graph])
            for sched in scheds
        }


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (1.0 for an empty sequence)."""
    values = [v for v in values]
    if not values:
        return 1.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def run_single(
    algorithm: Algorithm,
    graph: CSRGraph,
    schedule: str,
    config: Optional[GPUConfig] = None,
    max_iterations: Optional[int] = None,
    symmetrize: bool = False,
    engine: Optional[str] = None,
    **processor_kwargs,
) -> RunResult:
    """One (algorithm, graph, schedule) run.

    ``engine`` selects the simulator execution engine by name (see
    :mod:`repro.sim.engines`); it changes wall-clock speed only, never
    simulated results.
    """
    proc = GraphProcessor(
        algorithm, schedule=schedule, config=config,
        symmetrize=symmetrize, engine=engine, **processor_kwargs,
    )
    return proc.run(graph, max_iterations=max_iterations)


#: One-shot flag so the positional-tail deprecation fires only once
#: per process, not once per grid.
_POSITIONAL_TAIL_WARNED = False

_TAIL_ARG_NAMES = ("config", "max_iterations", "symmetrize")


def _absorb_positional_tail(legacy_tail, kwargs):
    """Map a legacy positional ``(config, max_iterations, symmetrize)``
    tail onto the keyword-only arguments, warning once."""
    global _POSITIONAL_TAIL_WARNED
    if len(legacy_tail) > len(_TAIL_ARG_NAMES):
        raise TypeError(
            "run_schedule_comparison() takes at most 3 positional "
            "arguments after 'schedules' "
            f"({len(legacy_tail)} given)"
        )
    if not _POSITIONAL_TAIL_WARNED:
        _POSITIONAL_TAIL_WARNED = True
        passed = ", ".join(_TAIL_ARG_NAMES[:len(legacy_tail)])
        warnings.warn(
            f"passing ({passed}) positionally to "
            "run_schedule_comparison() is deprecated; use keyword "
            "arguments (config=..., max_iterations=..., "
            "symmetrize=...)",
            DeprecationWarning,
            stacklevel=3,
        )
    for name, value in zip(_TAIL_ARG_NAMES, legacy_tail):
        if kwargs[name] is not _TAIL_DEFAULTS[name]:
            raise TypeError(
                f"run_schedule_comparison() got multiple values for "
                f"argument {name!r}"
            )
        kwargs[name] = value
    return kwargs


_TAIL_DEFAULTS = {"config": None, "max_iterations": None,
                  "symmetrize": False}


def run_schedule_comparison(
    algorithm_factory: Callable[[], Algorithm],
    graphs: Dict[str, CSRGraph],
    schedules: Sequence[str],
    *legacy_tail,
    config: Optional[GPUConfig] = None,
    max_iterations: Optional[int] = None,
    symmetrize: bool = False,
    jobs: Optional[int] = None,
    cache=None,
    telemetry=None,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """The Fig. 10-style grid: every schedule on every graph.

    ``algorithm_factory`` is called per run so trials never share
    mutable state.  ``config`` / ``max_iterations`` / ``symmetrize``
    are keyword-only; a positional tail still works through a
    deprecation shim (one warning per process) for old call sites.

    The grid runs serially in-process by default.  Passing ``jobs=N``,
    a :class:`~repro.runtime.cache.ResultCache`, or a
    :class:`~repro.runtime.telemetry.Telemetry` routes every cell
    through :class:`~repro.runtime.engine.BatchEngine` (as does setting
    ``REPRO_JOBS``); the engine path needs a picklable, hashable
    factory, i.e. an :class:`~repro.runtime.jobspec.AlgorithmSpec`.
    Cell ordering and cycle counts are identical either way.
    """
    if legacy_tail:
        absorbed = _absorb_positional_tail(
            legacy_tail,
            {"config": config, "max_iterations": max_iterations,
             "symmetrize": symmetrize},
        )
        config = absorbed["config"]
        max_iterations = absorbed["max_iterations"]
        symmetrize = absorbed["symmetrize"]
    if _engine_requested(jobs, cache, telemetry):
        from repro.runtime import AlgorithmSpec

        if isinstance(algorithm_factory, AlgorithmSpec):
            return _run_grid_engine(
                algorithm_factory, graphs, schedules, config,
                max_iterations, symmetrize, jobs, cache, telemetry,
                engine,
            )
        if jobs is not None or cache is not None or telemetry is not None:
            raise ReproError(
                "the engine path (jobs=/cache=/telemetry=) needs an "
                "AlgorithmSpec, e.g. AlgorithmSpec.of('pagerank', "
                "iterations=2), not an arbitrary callable"
            )
        # REPRO_JOBS is set globally but this caller only has a plain
        # factory: quietly keep the serial path working.
    result = ExperimentResult()
    for graph_name, graph in graphs.items():
        result.cycles[graph_name] = {}
        result.runs[graph_name] = {}
        for sched in schedules:
            run = run_single(
                algorithm_factory(), graph, sched, config=config,
                max_iterations=max_iterations, symmetrize=symmetrize,
                engine=engine,
            )
            result.cycles[graph_name][sched] = run.stats.total_cycles
            result.runs[graph_name][sched] = run
    return result


def _engine_requested(jobs, cache, telemetry) -> bool:
    """Whether any engine opt-in (argument or env) is present."""
    return (jobs is not None or cache is not None
            or telemetry is not None
            or bool(os.environ.get("REPRO_JOBS", "").strip()))


def _run_grid_engine(
    algorithm_spec,
    graphs: Dict[str, CSRGraph],
    schedules: Sequence[str],
    config: Optional[GPUConfig],
    max_iterations: Optional[int],
    symmetrize: bool,
    jobs: Optional[int],
    cache,
    telemetry,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Grid execution through the batch engine."""
    from repro.runtime import (BatchEngine, GraphSpec, JobSpec,
                               raise_on_failures)

    specs = []
    cells = []
    for graph_name, graph in graphs.items():
        graph_spec = (graph if isinstance(graph, GraphSpec)
                      else GraphSpec.inline(graph, name=graph_name))
        for sched in schedules:
            specs.append(JobSpec(
                algorithm=algorithm_spec,
                graph=graph_spec,
                schedule=sched,
                config=config,
                max_iterations=max_iterations,
                symmetrize=symmetrize,
                engine=engine,
            ))
            cells.append((graph_name, sched))

    engine = BatchEngine(jobs=jobs, cache=cache, telemetry=telemetry)
    outcomes = engine.run(specs)
    raise_on_failures(outcomes)

    result = ExperimentResult()
    for (graph_name, sched), outcome in zip(cells, outcomes):
        result.cycles.setdefault(graph_name, {})[sched] = (
            outcome.summary.total_cycles
        )
        result.runs.setdefault(graph_name, {})[sched] = outcome.summary
    return result
