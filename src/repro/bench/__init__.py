"""Benchmark harness: experiment runner and table/series formatting."""

from repro.bench.runner import (
    ExperimentResult,
    run_schedule_comparison,
    run_single,
    geomean,
)
from repro.bench.report import (format_table, format_series,
                                format_breakdown, format_bar_chart)

__all__ = [
    "ExperimentResult",
    "run_schedule_comparison",
    "run_single",
    "geomean",
    "format_table",
    "format_series",
    "format_breakdown",
    "format_bar_chart",
]
