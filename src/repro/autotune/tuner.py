"""Exhaustive schedule auto-tuner (the Jeong et al. PACT'23 stand-in).

Case Study 3 compares SparseWeaver — which needs *no* tuning — against
an auto-tuner that tries every software schedule and keeps the best.
The tuner's cost is the sum of all trial runs (the "Tuning Time"
column of Table V); its benefit is the best software schedule's
speedup over S_vm. SparseWeaver's column needs one run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ScheduleError
from repro.frontend.framework import GraphProcessor
from repro.frontend.udf import Algorithm
from repro.graph.csr import CSRGraph
from repro.sched.registry import SOFTWARE_SCHEDULES
from repro.sim.config import GPUConfig


@dataclass
class TrialResult:
    """One tuning trial: a schedule and its measured cost."""

    schedule: str
    cycles: int
    wall_seconds: float


@dataclass
class TuningReport:
    """Everything Table V needs for one dataset row."""

    best_schedule: str
    best_cycles: int
    baseline_cycles: int
    tuning_cycles: int
    tuning_wall_seconds: float
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def best_speedup(self) -> float:
        """Best software schedule's speedup over S_vm."""
        return self.baseline_cycles / self.best_cycles if self.best_cycles else 0.0


class AutoTuner:
    """Try every candidate schedule on a workload; keep the fastest."""

    def __init__(
        self,
        algorithm_factory,
        config: Optional[GPUConfig] = None,
        candidates: Optional[Sequence[str]] = None,
        max_iterations: Optional[int] = None,
        symmetrize: bool = False,
        include_sparseweaver: bool = False,
    ) -> None:
        """``algorithm_factory`` is a zero-argument callable returning a
        fresh :class:`~repro.frontend.udf.Algorithm` (tuning trials must
        not share mutable state).

        ``include_sparseweaver=True`` implements Section VII-B: on GPUs
        that have the Weaver, the tuner treats it as one more hardware
        option alongside the software schedules — typically collapsing
        the search, since SparseWeaver wins most skewed workloads.
        """
        self.algorithm_factory = algorithm_factory
        self.config = config or GPUConfig.vortex_bench()
        self.candidates = list(
            SOFTWARE_SCHEDULES if candidates is None else candidates
        )
        if include_sparseweaver and "sparseweaver" not in self.candidates:
            self.candidates.append("sparseweaver")
        if not self.candidates:
            raise ScheduleError("auto-tuner needs at least one candidate")
        self.max_iterations = max_iterations
        self.symmetrize = symmetrize

    def tune(self, graph: CSRGraph) -> TuningReport:
        """Run every candidate; report the winner and the tuning bill."""
        trials: List[TrialResult] = []
        cycles_by_schedule: Dict[str, int] = {}
        wall_total = 0.0
        for name in self.candidates:
            start = time.perf_counter()
            proc = GraphProcessor(
                self.algorithm_factory(),
                schedule=name,
                config=self.config,
                symmetrize=self.symmetrize,
            )
            result = proc.run(graph, max_iterations=self.max_iterations)
            wall = time.perf_counter() - start
            wall_total += wall
            cycles_by_schedule[name] = result.stats.total_cycles
            trials.append(
                TrialResult(name, result.stats.total_cycles, wall)
            )
        best = min(trials, key=lambda t: t.cycles)
        baseline = cycles_by_schedule.get(
            "vertex_map", trials[0].cycles
        )
        return TuningReport(
            best_schedule=best.schedule,
            best_cycles=best.cycles,
            baseline_cycles=baseline,
            tuning_cycles=sum(t.cycles for t in trials),
            tuning_wall_seconds=wall_total,
            trials=trials,
        )
