"""Exhaustive schedule auto-tuner (the Jeong et al. PACT'23 stand-in).

Case Study 3 compares SparseWeaver — which needs *no* tuning — against
an auto-tuner that tries every software schedule and keeps the best.
The tuner's cost is the sum of all trial runs (the "Tuning Time"
column of Table V); its benefit is the best software schedule's
speedup over S_vm. SparseWeaver's column needs one run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ScheduleError
from repro.frontend.framework import GraphProcessor
from repro.frontend.udf import Algorithm
from repro.graph.csr import CSRGraph
from repro.sched.registry import SOFTWARE_SCHEDULES
from repro.sim.config import GPUConfig


@dataclass
class TrialResult:
    """One tuning trial: a schedule and its measured cost."""

    schedule: str
    cycles: int
    wall_seconds: float


@dataclass
class TuningReport:
    """Everything Table V needs for one dataset row."""

    best_schedule: str
    best_cycles: int
    baseline_cycles: int
    tuning_cycles: int
    tuning_wall_seconds: float
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def best_speedup(self) -> float:
        """Best software schedule's speedup over S_vm."""
        return self.baseline_cycles / self.best_cycles if self.best_cycles else 0.0


class AutoTuner:
    """Try every candidate schedule on a workload; keep the fastest."""

    def __init__(
        self,
        algorithm_factory,
        config: Optional[GPUConfig] = None,
        candidates: Optional[Sequence[str]] = None,
        max_iterations: Optional[int] = None,
        symmetrize: bool = False,
        include_sparseweaver: bool = False,
        jobs: Optional[int] = None,
        cache=None,
        telemetry=None,
    ) -> None:
        """``algorithm_factory`` is a zero-argument callable returning a
        fresh :class:`~repro.frontend.udf.Algorithm` (tuning trials must
        not share mutable state).

        ``include_sparseweaver=True`` implements Section VII-B: on GPUs
        that have the Weaver, the tuner treats it as one more hardware
        option alongside the software schedules — typically collapsing
        the search, since SparseWeaver wins most skewed workloads.

        The schedule search is exactly the batch shape the runtime
        engine accelerates: pass ``jobs=N`` (or set ``REPRO_JOBS``) to
        fan trials across worker processes, and/or a
        :class:`~repro.runtime.cache.ResultCache` to skip trials whose
        result is already memoized.  The engine path requires
        ``algorithm_factory`` to be an
        :class:`~repro.runtime.jobspec.AlgorithmSpec`.
        """
        self.algorithm_factory = algorithm_factory
        self.config = config or GPUConfig.vortex_bench()
        self.candidates = list(
            SOFTWARE_SCHEDULES if candidates is None else candidates
        )
        if include_sparseweaver and "sparseweaver" not in self.candidates:
            self.candidates.append("sparseweaver")
        if not self.candidates:
            raise ScheduleError("auto-tuner needs at least one candidate")
        self.max_iterations = max_iterations
        self.symmetrize = symmetrize
        self.jobs = jobs
        self.cache = cache
        self.telemetry = telemetry

    def tune(self, graph: CSRGraph) -> TuningReport:
        """Run every candidate; report the winner and the tuning bill."""
        from repro.bench.runner import _engine_requested

        if _engine_requested(self.jobs, self.cache, self.telemetry):
            from repro.runtime import AlgorithmSpec

            if isinstance(self.algorithm_factory, AlgorithmSpec):
                trials = self._trials_engine(graph)
            elif (self.jobs is not None or self.cache is not None
                  or self.telemetry is not None):
                raise ScheduleError(
                    "the engine path (jobs=/cache=/telemetry=) needs an "
                    "AlgorithmSpec algorithm_factory"
                )
            else:
                trials = self._trials_serial(graph)
        else:
            trials = self._trials_serial(graph)
        cycles_by_schedule = {t.schedule: t.cycles for t in trials}
        wall_total = sum(t.wall_seconds for t in trials)
        best = min(trials, key=lambda t: t.cycles)
        baseline = cycles_by_schedule.get(
            "vertex_map", trials[0].cycles
        )
        return TuningReport(
            best_schedule=best.schedule,
            best_cycles=best.cycles,
            baseline_cycles=baseline,
            tuning_cycles=sum(t.cycles for t in trials),
            tuning_wall_seconds=wall_total,
            trials=trials,
        )

    # ------------------------------------------------------------------
    def _trials_serial(self, graph: CSRGraph) -> List[TrialResult]:
        """The original in-process trial loop."""
        trials: List[TrialResult] = []
        for name in self.candidates:
            start = time.perf_counter()
            proc = GraphProcessor(
                self.algorithm_factory(),
                schedule=name,
                config=self.config,
                symmetrize=self.symmetrize,
            )
            result = proc.run(graph, max_iterations=self.max_iterations)
            trials.append(TrialResult(
                name, result.stats.total_cycles,
                time.perf_counter() - start,
            ))
        return trials

    def _trials_engine(self, graph: CSRGraph) -> List[TrialResult]:
        """Trials through the batch engine (parallel and/or cached).

        Cached trials report a zero wall time — the tuner's bill is
        what it actually paid, which is the point of warm-starting a
        search from the result cache.
        """
        from repro.runtime import (BatchEngine, GraphSpec, JobSpec,
                                   raise_on_failures)

        graph_spec = GraphSpec.inline(graph, name="tuning")
        specs = [
            JobSpec(
                algorithm=self.algorithm_factory,
                graph=graph_spec,
                schedule=name,
                config=self.config,
                max_iterations=self.max_iterations,
                symmetrize=self.symmetrize,
            )
            for name in self.candidates
        ]
        engine = BatchEngine(jobs=self.jobs, cache=self.cache,
                             telemetry=self.telemetry)
        outcomes = engine.run(specs)
        raise_on_failures(outcomes)
        return [
            TrialResult(name, outcome.summary.total_cycles,
                        outcome.wall_seconds)
            for name, outcome in zip(self.candidates, outcomes)
        ]
