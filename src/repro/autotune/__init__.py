"""Auto-tuner baseline for Case Study 3 (Table V)."""

from repro.autotune.tuner import AutoTuner, TuningReport, TrialResult

__all__ = ["AutoTuner", "TuningReport", "TrialResult"]
