"""Abstract warp-instruction set for the simulator.

A kernel generator yields :class:`Instr` objects; the engine charges
issue and latency cycles and, for request/response ops (Weaver decode,
EGHW fetch), sends the hardware unit's reply back into the generator.

Every instruction carries a :class:`Phase` tag so the engine can build
the five-phase execution breakdown of Figs. 17-18 (Init, Registration,
Work-ID calculation, Edge-information access, Gather & Sum).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Optional

import numpy as np


class Op(IntEnum):
    """Warp instruction opcodes."""

    ALU = 0
    LOAD = 1
    STORE = 2
    SHMEM_LOAD = 3
    SHMEM_STORE = 4
    ATOMIC = 5
    SYNC = 6
    WEAVER_REG = 7
    WEAVER_DEC_ID = 8
    WEAVER_DEC_LOC = 9
    WEAVER_SKIP = 10
    EGHW_PUSH = 11
    EGHW_FETCH = 12
    COUNTER = 13
    NOP = 14


class Phase(IntEnum):
    """Execution-breakdown phases (Fig. 17/18 categories)."""

    INIT = 0
    REGISTRATION = 1
    SCHEDULE = 2       # "Work ID calculation" / edge schedule
    EDGE_ACCESS = 3    # edge information access
    GATHER = 4         # gather & sum
    APPLY = 5
    OTHER = 6


PHASE_LABELS = {
    Phase.INIT: "Init",
    Phase.REGISTRATION: "Registration",
    Phase.SCHEDULE: "Work ID calc",
    Phase.EDGE_ACCESS: "Edge info access",
    Phase.GATHER: "Gather & Sum",
    Phase.APPLY: "Apply",
    Phase.OTHER: "Other",
}


class Instr:
    """One warp-wide instruction.

    Attributes
    ----------
    op:
        Opcode.
    phase:
        Breakdown phase this instruction's cycles are charged to.
    region:
        For memory ops: the :class:`~repro.sim.memory.Region` addressed.
    indices:
        For memory ops: per-lane element indices into ``region``
        (inactive lanes excluded). May be an int for a scalar access.
    count:
        For ALU/SHMEM ops: number of back-to-back operations this
        instruction stands for (charged ``count`` issue cycles).
    payload:
        Op-specific data (Weaver registration tuples, counter names...).
    """

    __slots__ = ("op", "phase", "region", "indices", "count", "payload")

    def __init__(
        self,
        op: Op,
        phase: Phase,
        region: Optional[Any] = None,
        indices: Optional[Any] = None,
        count: int = 1,
        payload: Optional[Any] = None,
    ) -> None:
        self.op = op
        self.phase = phase
        self.region = region
        self.indices = indices
        self.count = count
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Instr({self.op.name}, {self.phase.name}, count={self.count})"
        )


# ----------------------------------------------------------------------
# Factory helpers: kernels read far better with these than raw Instr().
# ----------------------------------------------------------------------
def alu(phase: Phase, count: int = 1) -> Instr:
    """``count`` back-to-back arithmetic ops."""
    return Instr(Op.ALU, phase, count=count)


def load(phase: Phase, region: Any, indices: Any) -> Instr:
    """Global-memory load of ``region[indices]`` across active lanes."""
    return Instr(Op.LOAD, phase, region=region, indices=indices)


def store(phase: Phase, region: Any, indices: Any) -> Instr:
    """Global-memory store to ``region[indices]``."""
    return Instr(Op.STORE, phase, region=region, indices=indices)


def shmem_load(phase: Phase, count: int = 1) -> Instr:
    """Shared-memory read (``count`` accesses)."""
    return Instr(Op.SHMEM_LOAD, phase, count=count)


def shmem_store(phase: Phase, count: int = 1) -> Instr:
    """Shared-memory write (``count`` accesses)."""
    return Instr(Op.SHMEM_STORE, phase, count=count)


def atomic(phase: Phase, region: Any, indices: Any) -> Instr:
    """Atomic read-modify-write on ``region[indices]``; conflicting
    lanes (same element) serialize."""
    return Instr(Op.ATOMIC, phase, region=region, indices=indices)


def sync(phase: Phase) -> Instr:
    """Core-wide barrier (all resident warps must arrive)."""
    return Instr(Op.SYNC, phase)


def weaver_reg(phase: Phase, entries: Any) -> Instr:
    """``WEAVER_REG``: register ``(lane, vid, loc, degree)`` tuples."""
    return Instr(Op.WEAVER_REG, phase, payload=entries)


def weaver_dec_id(phase: Phase) -> Instr:
    """``WEAVER_DEC_ID``: request next warp-wide VID vector.

    The engine replies (via ``generator.send``) with a
    :class:`~repro.core.unit.DecodeResult`.
    """
    return Instr(Op.WEAVER_DEC_ID, phase)


def weaver_dec_loc(phase: Phase) -> Instr:
    """``WEAVER_DEC_LOC``: read the warp's EID row from the DT."""
    return Instr(Op.WEAVER_DEC_LOC, phase)


def weaver_skip(phase: Phase, vid: int) -> Instr:
    """``WEAVER_SKIP``: stop distributing work for ``vid``."""
    return Instr(Op.WEAVER_SKIP, phase, payload=vid)


def eghw_push(phase: Phase, vids: Any) -> Instr:
    """EGHW: push registered vertex ids into the unit's input buffer."""
    return Instr(Op.EGHW_PUSH, phase, payload=vids)


def eghw_fetch(phase: Phase) -> Instr:
    """EGHW: fetch the next batch of generated edge records (blocking)."""
    return Instr(Op.EGHW_FETCH, phase)


def counter(name: str, value: int = 1) -> Instr:
    """Zero-cost statistics counter bump (not a hardware instruction)."""
    return Instr(Op.COUNTER, Phase.OTHER, payload=(name, value))


def nop(phase: Phase = Phase.OTHER) -> Instr:
    """One idle issue slot."""
    return Instr(Op.NOP, phase)


def as_index_array(indices: Any) -> np.ndarray:
    """Normalize scalar / list / array lane indices to an int64 array."""
    arr = np.asarray(indices, dtype=np.int64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    return arr
