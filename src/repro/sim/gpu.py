"""Event-driven SIMT execution engine.

Execution model (DESIGN.md §5):

* Each core holds ``warps_per_core`` resident warps; a warp is a Python
  generator yielding :class:`~repro.sim.instructions.Instr`.
* A core issues at most one warp instruction per cycle. After issuing,
  the warp is blocked until the instruction's latency elapses; meanwhile
  other ready warps issue. This reproduces the latency hiding that
  in-order, scoreboarded GPUs such as Vortex get from warp-level
  parallelism.
* When no warp is ready, the gap is charged as a stall attributed to the
  instruction class the *next-ready* warp is blocked on — the same
  attribution idea behind Nsight's "long/short scoreboard" stalls.
* Cores interleave through a global event heap keyed by core time, so
  shared L2/L3 state is touched in approximately true time order.
* ``SYNC`` is a core-wide barrier over non-finished warps.
* Weaver/EGHW instructions are dispatched to a per-core hardware unit
  which manages its own busy-time serialization and replies through
  ``generator.send``.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.profile import get_profiler
from repro.obs.provenance import get_digester
from repro.sim.config import GPUConfig
from repro.sim.instructions import Instr, Op, Phase, as_index_array
from repro.sim.memory import MemoryHierarchy
from repro.sim.stats import KernelStats, StallCat, stall_category

_RUNNING = 0
_BARRIER = 1
_DONE = 2


class WarpContext:
    """Identity of one resident warp, passed to kernel factories."""

    __slots__ = (
        "core_id",
        "warp_slot",
        "global_warp_id",
        "config",
        "lane_ids",
        "thread_ids",
    )

    def __init__(self, core_id: int, warp_slot: int, config: GPUConfig) -> None:
        self.core_id = core_id
        self.warp_slot = warp_slot
        self.config = config
        self.global_warp_id = core_id * config.warps_per_core + warp_slot
        self.lane_ids = np.arange(config.threads_per_warp, dtype=np.int64)
        self.thread_ids = (
            self.global_warp_id * config.threads_per_warp + self.lane_ids
        )

    @property
    def num_lanes(self) -> int:
        """Threads per warp."""
        return self.config.threads_per_warp

    @property
    def total_threads(self) -> int:
        """Grid-wide thread count (stride of vertex/edge loops)."""
        return self.config.total_threads


class _Warp:
    __slots__ = ("slot", "gen", "ready", "state", "blocked_op",
                 "blocked_phase", "response")

    def __init__(self, slot: int, gen: Optional[Iterator[Instr]]) -> None:
        self.slot = slot
        self.gen = gen
        self.ready = 0
        self.state = _RUNNING if gen is not None else _DONE
        self.blocked_op = Op.NOP
        self.blocked_phase = Phase.OTHER
        self.response: Any = None


WarpFactory = Callable[[WarpContext], Optional[Iterator[Instr]]]
UnitFactory = Callable[[int], Any]


class GPU:
    """The simulated GPU: cores + memory hierarchy + optional units."""

    #: Whether :meth:`run_kernel` consumes ``replay`` hints.  Drivers
    #: use this to decide when to swap in a recording ``edge_update``
    #: (the fast engine captures effects at trace time; the reference
    #: engine must execute them live).
    supports_replay = False

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.memory = MemoryHierarchy(config)

    # ------------------------------------------------------------------
    def has_trace(self, key: str) -> bool:
        """Whether a kernel trace is stored under ``key``.

        The reference engine never stores traces; the fast engine
        (:class:`repro.sim.fast.FastGPU`) overrides this so drivers can
        skip rebuilding warp factories for kernels that will replay.
        """
        return False

    # ------------------------------------------------------------------
    def run_kernel(
        self,
        warp_factory: WarpFactory,
        unit_factory: Optional[UnitFactory] = None,
        flush_caches: bool = False,
        max_instructions: int = 500_000_000,
        tracer: Optional[Any] = None,
        replay: Optional[Any] = None,
    ) -> KernelStats:
        """Run one kernel to completion and return its statistics.

        Parameters
        ----------
        warp_factory:
            Called once per resident warp with a :class:`WarpContext`;
            returns the warp's instruction generator, or ``None`` when
            the warp has no work (it never participates in barriers).
        unit_factory:
            Optional per-core hardware unit constructor (Weaver or
            EGHW). The unit must expose
            ``handle(op, warp_slot, now, payload) -> (done_time, response)``.
        flush_caches:
            Invalidate caches before the kernel (cold-start runs).
        max_instructions:
            Safety valve against runaway kernels.
        replay:
            Optional :class:`repro.sim.fast.ReplayHint`.  The reference
            engine ignores it (every launch interprets the generators);
            it exists so drivers can pass one hint down regardless of
            which engine built the GPU.
        """
        cfg = self.config
        if flush_caches:
            self.memory.flush()
        self.memory.begin_kernel()
        stats = KernelStats()
        dram_before = self.memory.dram_accesses
        # Duck-typed: tracers predating stall attribution only expose
        # ``record``.
        record_stall = getattr(tracer, "record_stall", None)
        registry = get_registry()
        cache_before = (self.memory.cache_counts() if registry.enabled
                        else None)
        # Host-side profiler: every hook below hides behind this one
        # local truth test, so a disabled profiler costs one comparison
        # per section and reads no clocks — simulated cycle counts are
        # bit-identical either way (perf_counter never feeds the sim).
        profiler = get_profiler()
        prof_on = profiler.enabled
        kernel_start = perf_counter() if prof_on else 0.0
        # Provenance digester: same guard discipline. Folds only
        # simulated values (never host time), so even enabled it can't
        # perturb cycles — it just records what they were.
        digester = get_digester()
        dig_on = digester.enabled
        if dig_on:
            digester.begin_kernel()
        # Duck-typed kernel-launch notification for window tracers
        # (``repro diff --replay`` records only one kernel).
        tracer_begin = getattr(tracer, "begin_kernel", None)
        if tracer_begin is not None:
            tracer_begin()

        cores = []
        units: Dict[int, Any] = {}
        heap = []
        for core_id in range(cfg.num_cores):
            warps = []
            for slot in range(cfg.warps_per_core):
                ctx = WarpContext(core_id, slot, cfg)
                gen = warp_factory(ctx)
                warp = _Warp(slot, gen)
                if gen is not None:
                    stats.warps_launched += 1
                warps.append(warp)
            cores.append(warps)
            if unit_factory is not None:
                units[core_id] = unit_factory(core_id)
            if any(w.state == _RUNNING for w in warps):
                heapq.heappush(heap, (0, core_id))
        if prof_on:
            profiler.add("setup", perf_counter() - kernel_start)

        core_time = [0] * cfg.num_cores
        issued = 0
        while heap:
            sched_start = perf_counter() if prof_on else 0.0
            t, core_id = heapq.heappop(heap)
            warps = cores[core_id]
            # One pass finds the first minimal-ready running warp
            # (strict < keeps the slot-order tie-break that
            # ``min(running, key=_ready_of)`` had).
            warp = None
            best = 1 << 62
            for w in warps:
                if w.state == _RUNNING and w.ready < best:
                    warp = w
                    best = w.ready
            if warp is None:
                blocked = [w for w in warps if w.state == _BARRIER]
                if blocked:
                    release = max(max(w.ready for w in blocked), t)
                    # Barrier cost is warp-level waiting: early arrivals
                    # sit idle until the last warp shows up.
                    for w in blocked:
                        wait = release - w.ready
                        if wait:
                            stats.stall_cells[
                                (core_id, w.slot, StallCat.SYNC)] += wait
                            if record_stall is not None:
                                record_stall(w.ready, core_id, w.slot,
                                             StallCat.SYNC, wait)
                            if dig_on:
                                digester.note_stall(w.ready, core_id,
                                                    w.slot, StallCat.SYNC,
                                                    wait)
                        w.state = _RUNNING
                        w.ready = release
                    heapq.heappush(heap, (release, core_id))
                if prof_on:
                    profiler.add("schedule", perf_counter() - sched_start)
                continue

            if warp.ready > t:
                gap = warp.ready - t
                cat = stall_category(warp.blocked_op)
                # Only the attribution cells accumulate in the loop;
                # the per-category counters are folded from them at
                # kernel end, keeping the hot path at one increment.
                stats.stall_cells[(core_id, warp.slot, cat)] += gap
                stats.phase_cycles[warp.blocked_phase] += gap
                if record_stall is not None:
                    record_stall(t, core_id, warp.slot, cat, gap)
                if dig_on:
                    digester.note_stall(t, core_id, warp.slot, cat, gap)
                t = warp.ready
            if prof_on:
                kernel_gen_start = perf_counter()
                profiler.add("schedule", kernel_gen_start - sched_start)

            try:
                instr = warp.gen.send(warp.response)
            except StopIteration:
                warp.state = _DONE
                warp.gen = None
                if any(w.state != _DONE for w in warps):
                    heapq.heappush(heap, (t, core_id))
                core_time[core_id] = max(core_time[core_id], t)
                if prof_on:
                    profiler.add("kernel",
                                 perf_counter() - kernel_gen_start)
                continue
            warp.response = None
            if prof_on:
                execute_start = perf_counter()
                profiler.add("kernel", execute_start - kernel_gen_start)

            issue_cost, done = self._execute(
                instr, core_id, warp, t, units.get(core_id), stats
            )
            if prof_on:
                account_start = perf_counter()
                profiler.add_op(instr.op.name,
                                account_start - execute_start)
            if tracer is not None and instr.op != Op.COUNTER:
                tracer.record(t, core_id, warp.slot, instr.op,
                              instr.phase, done)
            if dig_on and instr.op != Op.COUNTER:
                digester.note_issue(t, core_id, warp.slot, instr.op,
                                    instr.phase, done)
            if instr.op != Op.COUNTER:
                issued += 1
                stats.instructions += 1
                stats.op_counts[instr.op] += 1
                stats.phase_cycles[instr.phase] += issue_cost
                if issued > max_instructions:
                    raise SimulationError(
                        f"kernel exceeded {max_instructions} instructions; "
                        "likely a non-terminating kernel"
                    )
            warp.ready = done
            warp.blocked_op = instr.op
            warp.blocked_phase = instr.phase
            t += issue_cost
            core_time[core_id] = max(core_time[core_id], t)
            heapq.heappush(heap, (t, core_id))
            if prof_on:
                profiler.add("account", perf_counter() - account_start)

        finalize_start = perf_counter() if prof_on else 0.0
        for core_id, warps in enumerate(cores):
            pending = [w for w in warps if w.state == _BARRIER]
            if pending:
                raise SimulationError(
                    f"core {core_id}: {len(pending)} warps stuck at a "
                    "barrier at kernel end (mismatched SYNC counts)"
                )
            tail = max((w.ready for w in warps), default=0)
            core_time[core_id] = max(core_time[core_id], tail)

        stats.total_cycles = max(core_time) if core_time else 0
        for (_core, _warp, cat), cycles in stats.stall_cells.items():
            stats.stall_cycles[cat] += cycles
        stats.cache = self.memory.cache_stats()
        stats.dram_accesses = self.memory.dram_accesses - dram_before
        if registry.enabled:
            registry.publish_kernel_stats(stats)
            self.memory.publish_metrics(registry, cache_before,
                                        stats.dram_accesses)
        if prof_on:
            end = perf_counter()
            profiler.add("finalize", end - finalize_start)
            profiler.end_kernel(stats.total_cycles, end - kernel_start)
        if dig_on:
            digester.end_kernel(stats)
        return stats

    # ------------------------------------------------------------------
    def _execute(self, instr, core_id, warp, now, unit, stats):
        """Charge one instruction; returns ``(issue_cost, done_time)``."""
        cfg = self.config
        op = instr.op

        if op == Op.ALU:
            cost = instr.count
            return cost, now + cost + cfg.alu_latency - 1
        if op == Op.LOAD:
            idx = as_index_array(instr.indices)
            if idx.size == 0:
                return 1, now + 1
            latency, _ = self.memory.access(core_id, instr.region, idx,
                                            now=now)
            # Element-level traffic accounting per array: lets tests
            # check the Table I access formulas (2|V|+|E| vs 2|E|).
            stats.counters[f"elements_loaded:{instr.region.name}"] += idx.size
            return 1, now + 1 + latency
        if op == Op.STORE:
            idx = as_index_array(instr.indices)
            if idx.size == 0:
                return 1, now + 1
            # Write-allocate for cache state; the warp itself only pays
            # the (buffered) store latency.
            self.memory.access(core_id, instr.region, idx, now=now)
            return 1, now + 1 + cfg.store_latency
        if op == Op.ATOMIC:
            idx = as_index_array(instr.indices)
            if idx.size == 0:
                return 1, now + 1
            latency, _ = self.memory.access(core_id, instr.region, idx,
                                            now=now)
            conflicts = idx.size - np.unique(idx).size
            latency += cfg.atomic_extra * (1 + conflicts)
            return 1, now + 1 + latency
        if op == Op.SHMEM_LOAD or op == Op.SHMEM_STORE:
            cost = instr.count
            return cost, now + cost + cfg.shmem_latency - 1
        if op == Op.SYNC:
            warp.state = _BARRIER
            return 1, now + 1
        if op in _UNIT_OPS:
            if unit is None:
                raise SimulationError(
                    f"{op.name} issued but the kernel was launched without "
                    "a hardware unit"
                )
            done, response = unit.handle(op, warp.slot, now + 1, instr.payload)
            warp.response = response
            return 1, done
        if op == Op.COUNTER:
            name, value = instr.payload
            stats.counters[name] += value
            return 0, now
        if op == Op.NOP:
            return 1, now + 1
        raise SimulationError(f"unknown opcode {op!r}")


_UNIT_OPS = {
    Op.WEAVER_REG,
    Op.WEAVER_DEC_ID,
    Op.WEAVER_DEC_LOC,
    Op.WEAVER_SKIP,
    Op.EGHW_PUSH,
    Op.EGHW_FETCH,
}
