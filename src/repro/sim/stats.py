"""Cycle, stall and phase accounting.

The stall taxonomy mirrors the Nsight Compute categories of Fig. 4 as
closely as a simulator can: MEMORY = waiting on a global-memory load
(long scoreboard), SHARED = waiting on shared memory (short scoreboard),
SYNC = waiting at a barrier, WEAVER / EGHW = waiting on the hardware
unit, EXEC_DEP = waiting on an in-flight ALU result, IDLE = no warp had
anything to issue.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Tuple

from repro.obs.profile import phase as _host_phase
from repro.obs.provenance import get_digester
from repro.sim.instructions import Op, Phase, PHASE_LABELS


class StallCat(IntEnum):
    """Why a core cycle was spent not issuing."""

    MEMORY = 0
    SHARED = 1
    SYNC = 2
    WEAVER = 3
    EGHW = 4
    EXEC_DEP = 5
    IDLE = 6


STALL_LABELS = {
    StallCat.MEMORY: "Memory (long scoreboard)",
    StallCat.SHARED: "Shared (short scoreboard)",
    StallCat.SYNC: "Barrier",
    StallCat.WEAVER: "Weaver unit",
    StallCat.EGHW: "EGHW unit",
    StallCat.EXEC_DEP: "Execution dependency",
    StallCat.IDLE: "Idle",
}

_OP_TO_STALL = {
    Op.LOAD: StallCat.MEMORY,
    Op.STORE: StallCat.MEMORY,
    Op.ATOMIC: StallCat.MEMORY,
    Op.SHMEM_LOAD: StallCat.SHARED,
    Op.SHMEM_STORE: StallCat.SHARED,
    Op.SYNC: StallCat.SYNC,
    Op.WEAVER_REG: StallCat.WEAVER,
    Op.WEAVER_DEC_ID: StallCat.WEAVER,
    Op.WEAVER_DEC_LOC: StallCat.WEAVER,
    Op.WEAVER_SKIP: StallCat.WEAVER,
    Op.EGHW_PUSH: StallCat.EGHW,
    Op.EGHW_FETCH: StallCat.EGHW,
}


def stall_category(op: Op) -> StallCat:
    """Stall category charged when a warp is blocked on ``op``."""
    return _OP_TO_STALL.get(op, StallCat.EXEC_DEP)


@dataclass
class CacheStats:
    """Hit/miss counts of one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction; 0.0 when the level was never accessed."""
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another level's counts into this one."""
        self.hits += other.hits
        self.misses += other.misses


@dataclass
class KernelStats:
    """Everything the engine measured while running one kernel."""

    total_cycles: int = 0
    instructions: int = 0
    warps_launched: int = 0
    phase_cycles: Dict[Phase, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    stall_cycles: Dict[StallCat, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    op_counts: Dict[Op, int] = field(default_factory=lambda: defaultdict(int))
    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    cache: Dict[str, CacheStats] = field(default_factory=dict)
    dram_accesses: int = 0
    #: Stall attribution cells: (core, warp slot, category) -> cycles.
    #: Always populated by the engine; sums exactly to ``stall_cycles``
    #: (the Fig. 4 per-core/per-warp view).
    stall_cells: Dict[Tuple[int, int, StallCat], int] = field(
        default_factory=lambda: defaultdict(int)
    )

    # ------------------------------------------------------------------
    @property
    def issue_cycles(self) -> int:
        """Cycles spent issuing (total minus stalls)."""
        return self.total_cycles - sum(self.stall_cycles.values())

    @property
    def warp_iterations(self) -> int:
        """Gather-loop rounds executed (the Fig. 2a metric)."""
        return self.counters.get("warp_iterations", 0)

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another kernel's stats (multi-kernel algorithms).

        ``total_cycles`` adds because kernels run back-to-back.
        Host-profiled as ``stats/merge`` — iterative algorithms merge
        per-iteration stats thousands of times, and the stall-cell
        dict can dominate that cost.
        """
        digester = get_digester()
        if digester.enabled:
            # Merge order and content are part of a run's provenance:
            # an aggregation bug diverges here even when every kernel's
            # own records agree.
            digester.note_merge(other.total_cycles, other.instructions)
        with _host_phase("stats/merge"):
            self._merge(other)

    def _merge(self, other: "KernelStats") -> None:
        self.total_cycles += other.total_cycles
        self.instructions += other.instructions
        self.warps_launched += other.warps_launched
        self.dram_accesses += other.dram_accesses
        for k, v in other.phase_cycles.items():
            self.phase_cycles[k] += v
        for k, v in other.stall_cycles.items():
            self.stall_cycles[k] += v
        for k, v in other.op_counts.items():
            self.op_counts[k] += v
        for k, v in other.counters.items():
            self.counters[k] += v
        for name, cs in other.cache.items():
            self.cache.setdefault(name, CacheStats()).merge(cs)
        for cell, v in other.stall_cells.items():
            self.stall_cells[cell] += v

    # ------------------------------------------------------------------
    def phase_breakdown(self) -> Dict[str, int]:
        """Human-readable phase -> cycles mapping (Fig. 17 rows)."""
        return {
            PHASE_LABELS[p]: c for p, c in sorted(self.phase_cycles.items())
        }

    def stall_breakdown(self) -> Dict[str, int]:
        """Human-readable stall -> cycles mapping (Fig. 4 rows)."""
        return {
            STALL_LABELS[s]: c for s, c in sorted(self.stall_cycles.items())
        }

    # ------------------------------------------------------------------
    def stall_by_core(self) -> Dict[int, Dict[StallCat, int]]:
        """Attributed stall cycles folded to core granularity."""
        out: Dict[int, Dict[StallCat, int]] = {}
        for (core, _warp, cat), cycles in self.stall_cells.items():
            out.setdefault(core, defaultdict(int))[cat] += cycles
        return {core: dict(cats) for core, cats in sorted(out.items())}

    def stall_by_warp(self, core: int) -> Dict[int, Dict[StallCat, int]]:
        """Attributed stall cycles of one core, per warp slot."""
        out: Dict[int, Dict[StallCat, int]] = {}
        for (c, warp, cat), cycles in self.stall_cells.items():
            if c == core:
                out.setdefault(warp, defaultdict(int))[cat] += cycles
        return {warp: dict(cats) for warp, cats in sorted(out.items())}

    def stall_cells_total(self) -> Dict[StallCat, int]:
        """Attribution cells folded back to categories.

        Equals ``stall_cycles`` whenever the stats came from the
        engine — the consistency check behind Fig. 4's attribution.
        """
        out: Dict[StallCat, int] = defaultdict(int)
        for (_core, _warp, cat), cycles in self.stall_cells.items():
            out[cat] += cycles
        return dict(out)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (for tooling and archival)."""
        return {
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "warps_launched": self.warps_launched,
            "dram_accesses": self.dram_accesses,
            "phases": self.phase_breakdown(),
            "stalls": self.stall_breakdown(),
            "ops": {op.name: count for op, count in
                    sorted(self.op_counts.items())},
            "counters": dict(self.counters),
            "cache": {
                name: {"hits": cs.hits, "misses": cs.misses}
                for name, cs in self.cache.items()
            },
        }

    def to_summary_dict(self) -> Dict[str, object]:
        """Lossless, picklable/JSON-able snapshot for process transport.

        Unlike :meth:`to_dict` (whose phase/stall keys are display
        labels), keys here are enum *names* so
        :meth:`from_summary_dict` can rebuild an equivalent object on
        the other side of a process or cache-file boundary.
        """
        out = {
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "warps_launched": self.warps_launched,
            "dram_accesses": self.dram_accesses,
            "phase_cycles": {p.name: c for p, c in
                             sorted(self.phase_cycles.items())},
            "stall_cycles": {s.name: c for s, c in
                             sorted(self.stall_cycles.items())},
            "op_counts": {op.name: c for op, c in
                          sorted(self.op_counts.items())},
            "counters": dict(self.counters),
            "cache": {
                name: {"hits": cs.hits, "misses": cs.misses}
                for name, cs in self.cache.items()
            },
        }
        if self.stall_cells:
            out["stall_cells"] = {
                f"{core}/{warp}/{cat.name}": cycles
                for (core, warp, cat), cycles
                in sorted(self.stall_cells.items())
            }
        return out

    @classmethod
    def from_summary_dict(cls, data: Dict[str, object]) -> "KernelStats":
        """Rebuild a :class:`KernelStats` from :meth:`to_summary_dict`."""
        stats = cls(
            total_cycles=int(data.get("total_cycles", 0)),
            instructions=int(data.get("instructions", 0)),
            warps_launched=int(data.get("warps_launched", 0)),
            dram_accesses=int(data.get("dram_accesses", 0)),
        )
        for name, c in data.get("phase_cycles", {}).items():
            stats.phase_cycles[Phase[name]] = int(c)
        for name, c in data.get("stall_cycles", {}).items():
            stats.stall_cycles[StallCat[name]] = int(c)
        for name, c in data.get("op_counts", {}).items():
            stats.op_counts[Op[name]] = int(c)
        for name, c in data.get("counters", {}).items():
            stats.counters[name] = int(c)
        for name, counts in data.get("cache", {}).items():
            stats.cache[name] = CacheStats(
                hits=int(counts["hits"]), misses=int(counts["misses"])
            )
        for cell, cycles in data.get("stall_cells", {}).items():
            core, warp, cat = cell.split("/")
            stats.stall_cells[(int(core), int(warp),
                               StallCat[cat])] = int(cycles)
        return stats

    def summary(self) -> str:
        """Multi-line textual summary for reports."""
        lines = [
            f"cycles={self.total_cycles} instructions={self.instructions} "
            f"warps={self.warps_launched}",
            "phases: "
            + ", ".join(f"{k}={v}" for k, v in self.phase_breakdown().items()),
            "stalls: "
            + ", ".join(f"{k}={v}" for k, v in self.stall_breakdown().items()),
        ]
        if self.cache:
            lines.append(
                "cache: "
                + ", ".join(
                    f"{name} {cs.hits}/{cs.accesses} hits"
                    for name, cs in self.cache.items()
                )
            )
        return "\n".join(lines)
