"""Trace-and-replay fast-path execution engine.

The reference interpreter (:mod:`repro.sim.gpu`) re-executes every
warp generator and re-derives every cache-line set on every kernel
launch.  For the schedules that opt in (``Schedule.trace_safe``), the
instruction stream of a kernel is *response-independent*: it depends
only on the topology and the launch geometry, never on simulated
latencies or on state values the kernel itself mutates.  ``FastGPU``
exploits that in two stages:

* **Trace** — drain every warp generator once with ``next()`` (no
  simulation), compiling each instruction into a flat record:
  precomputed cache-line lists, atomic conflict surcharges, issue
  costs and stall categories.  ``COUNTER`` pseudo-instructions are
  folded into static totals (they cost zero cycles and cannot perturb
  warp selection).  The drain is *barrier-aware*: warps advance in
  slot order one SYNC segment at a time, so schedules that coordinate
  through shared per-launch registries (cta_map, twc, twce) observe
  every sibling's registration before computing combined work — the
  same visibility order the reference barrier gives them.
* **Replay** — run the records through a lean clone of the reference
  event loop: same heap, same first-minimal warp selection, same
  barrier release and stall attribution, same memory-hierarchy walk
  (true LRU state), so cycle counts, stall cells, cache stats and
  provenance ledgers are **bit-identical** to the reference engine.
  Functional edge updates captured at trace time are re-executed in
  issue order against live state, preserving float accumulation order.

Kernels the fast path does not cover (hardware-unit schedules,
execution tracers, filtered/early-exit algorithms — their streams read
kernel-mutated state) fall back to the reference loop per launch and
increment ``sim_engine_fallback_total``.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.profile import get_profiler
from repro.obs.provenance import get_digester
from repro.sim.gpu import _UNIT_OPS, GPU, WarpContext
from repro.sim.instructions import Op, Phase, as_index_array
from repro.sim.stats import KernelStats, StallCat, stall_category

#: Replay record kinds.  FIXED covers every op whose completion time is
#: a constant offset (ALU, SHMEM, NOP, empty memory ops).  COUNTER
#: records stay in the stream even though their values are folded
#: statically: the reference executes them as ``(0, now)``, which
#: resets the warp's ready time to *now* and thereby perturbs the
#: min-ready selection among its siblings — dropping them would change
#: issue order and break bit-exactness.
_FIXED, _LOAD, _STORE, _ATOMIC, _SYNC_KIND, _COUNTER = 0, 1, 2, 3, 4, 5

_SYNC_CAT = StallCat.SYNC
_NOP_CAT = stall_category(Op.NOP)
_COUNTER_CAT = stall_category(Op.COUNTER)


class ReplayHint:
    """Replay directive one kernel launch hands to :class:`FastGPU`.

    ``key`` identifies the kernel within the GPU's trace store (the
    driver uses ``"init"`` / ``"gather"`` / ``"apply"``).  ``capture``
    is the list a recording ``edge_update`` appends argument tuples to
    during the trace drain; ``effect`` is the callable replay invokes
    (in issue order) to apply each captured tuple against live state.
    Both are ``None`` for kernels without functional side effects.

    ``elementwise`` is an optional ``(reads, writes, alu_ops, phase,
    n)`` descriptor — region lists, ALU op count, issue phase, and the
    vertex count — for grid-stride elementwise kernels.  Because each
    warp touches a *contiguous* index range per epoch, the trace can be
    compiled analytically (cache lines are integer ranges) without ever
    running the warp generators; the launch may then pass
    ``warp_factory=None``.
    """

    __slots__ = ("key", "capture", "effect", "elementwise")

    def __init__(self, key: str, capture: Optional[list] = None,
                 effect: Optional[Callable] = None,
                 elementwise: Optional[tuple] = None) -> None:
        self.key = key
        self.capture = capture
        self.effect = effect
        self.elementwise = elementwise


class _KernelTrace:
    """One kernel's compiled records plus its static accounting."""

    __slots__ = ("cores", "instructions", "warps_launched", "op_counts",
                 "issue_phase", "counters")

    def __init__(self, cores, instructions, warps_launched, op_counts,
                 issue_phase, counters) -> None:
        self.cores = cores  # per core: [(slot, records, effects|None)]
        self.instructions = instructions
        self.warps_launched = warps_launched
        self.op_counts = op_counts
        self.issue_phase = issue_phase
        self.counters = counters


class _RWarp:
    """Replay-time state of one resident warp (mirrors gpu._Warp)."""

    __slots__ = ("slot", "recs", "n", "i", "ready", "state", "cat",
                 "phase", "eff")

    def __init__(self, slot: int, recs: tuple, eff) -> None:
        self.slot = slot
        self.recs = recs
        self.n = len(recs)
        self.i = 0
        self.ready = 0
        self.state = 0  # _RUNNING
        self.cat = _NOP_CAT
        self.phase = Phase.OTHER
        self.eff = eff


class FastGPU(GPU):
    """Drop-in :class:`GPU` with per-kernel trace-and-replay."""

    supports_replay = True

    def __init__(self, config) -> None:
        super().__init__(config)
        self._traces: Dict[str, _KernelTrace] = {}

    # ------------------------------------------------------------------
    def has_trace(self, key: str) -> bool:
        """Whether a kernel trace is already stored under ``key``."""
        return key in self._traces

    # ------------------------------------------------------------------
    def run_kernel(
        self,
        warp_factory=None,
        unit_factory=None,
        flush_caches: bool = False,
        max_instructions: int = 500_000_000,
        tracer: Optional[Any] = None,
        replay: Optional[ReplayHint] = None,
    ) -> KernelStats:
        """Trace-and-replay when a hint is given; else reference loop.

        Hardware-unit launches and execution-tracer launches always
        delegate: units reply through ``generator.send`` (streams are
        response-dependent) and tracers want the per-instruction loop.
        """
        if replay is None or unit_factory is not None or tracer is not None:
            reason = ("unit" if unit_factory is not None
                      else "tracer" if tracer is not None else "no_hint")
            get_registry().counter(
                "sim_engine_fallback_total",
                "Kernels the fast engine delegated to the reference loop",
            ).inc(reason=reason)
            return super().run_kernel(
                warp_factory, unit_factory=unit_factory,
                flush_caches=flush_caches,
                max_instructions=max_instructions, tracer=tracer)
        trace = self._traces.get(replay.key)
        if trace is None:
            profiler = get_profiler()
            start = perf_counter() if profiler.enabled else 0.0
            if replay.elementwise is not None:
                trace = self._trace_elementwise(replay.elementwise)
            else:
                trace = self._trace(warp_factory, replay,
                                    max_instructions)
            self._traces[replay.key] = trace
            if profiler.enabled:
                profiler.add("fast/trace", perf_counter() - start)
        return self._replay(trace, replay, flush_caches, max_instructions)

    # ------------------------------------------------------------------
    def _trace_elementwise(self, desc: tuple) -> _KernelTrace:
        """Compile a grid-stride elementwise kernel without generators.

        Mirrors ``frontend.framework._elementwise_factory`` exactly:
        warp ``gwid`` covers indices ``[gwid*lanes + epoch*stride,
        ...)`` clipped to ``n``, a warp whose first index is out of
        range is never launched, and an epoch with no indices ends the
        warp.  Contiguous indices make every cache-line set an integer
        range, so records are built in O(1) per instruction with no
        numpy; the index span is kept as an ``(a, b)`` marker and only
        materialized when the provenance walk needs a real array.
        """
        reads, writes, alu_ops, phase, n = desc
        cfg = self.config
        shift = self.memory._line_shift
        lanes = cfg.threads_per_warp
        stride = cfg.total_threads
        num_epochs = max(1, -(-n // stride)) if n else 1
        alu_rec = (_FIXED, alu_ops, alu_ops + cfg.alu_latency - 1,
                   phase, stall_category(Op.ALU), None, None, None,
                   Op.ALU)
        load_cat = stall_category(Op.LOAD)
        store_cat = stall_category(Op.STORE)
        store_aux = 1 + cfg.store_latency
        counters: Dict[str, int] = defaultdict(int)
        instructions = 0
        warps_launched = 0
        epochs_run = 0
        cores = []
        for core_id in range(cfg.num_cores):
            entries = []
            for slot in range(cfg.warps_per_core):
                first = (core_id * cfg.warps_per_core + slot) * lanes
                if first >= n:
                    continue
                warps_launched += 1
                records = []
                for epoch in range(num_epochs):
                    a = first + epoch * stride
                    if a >= n:
                        break
                    b = a + lanes
                    if b > n:
                        b = n
                    epochs_run += 1
                    span = (a, b)
                    for region in reads:
                        base, its = region.base, region.itemsize
                        lo = (base + a * its) >> shift
                        hi = (base + (b - 1) * its) >> shift
                        records.append(
                            (_LOAD, 1, 0, phase, load_cat,
                             list(range(lo, hi + 1)), span, region,
                             Op.LOAD))
                        counters["elements_loaded:"
                                 + region.name] += b - a
                    records.append(alu_rec)
                    for region in writes:
                        base, its = region.base, region.itemsize
                        lo = (base + a * its) >> shift
                        hi = (base + (b - 1) * its) >> shift
                        records.append(
                            (_STORE, 1, store_aux, phase, store_cat,
                             list(range(lo, hi + 1)), span, region,
                             Op.STORE))
                entries.append((slot, tuple(records), None))
                instructions += len(records)
            cores.append(entries)
        op_counts = {}
        if epochs_run:
            if reads:
                op_counts[Op.LOAD] = epochs_run * len(reads)
            op_counts[Op.ALU] = epochs_run
            if writes:
                op_counts[Op.STORE] = epochs_run * len(writes)
        issue_phase = ({phase: epochs_run
                        * (len(reads) + alu_ops + len(writes))}
                       if epochs_run else {})
        return _KernelTrace(cores, instructions, warps_launched,
                            op_counts, issue_phase, dict(counters))

    # ------------------------------------------------------------------
    def _trace(self, warp_factory, hint: ReplayHint,
               max_instructions: int) -> _KernelTrace:
        """Drain every warp generator and compile its records.

        Barrier-aware round-robin: each pass advances every live warp
        (slot order) up to its next ``SYNC`` or to completion, so all
        pre-barrier shared-state writes land before any warp runs its
        post-barrier code — matching reference visibility because
        between-barrier shared writes are slot-keyed and post-barrier
        combination is idempotent (the ``trace_safe`` contract).
        """
        cfg = self.config
        capture = hint.capture
        if capture is not None:
            del capture[:]
        lines_for = self.memory.lines_for
        line_shift = self.memory._line_shift
        alu_lat = cfg.alu_latency
        shmem_lat = cfg.shmem_latency
        store_aux = 1 + cfg.store_latency
        atomic_extra = cfg.atomic_extra
        op_counts: Dict[Op, int] = defaultdict(int)
        issue_phase: Dict[Phase, int] = defaultdict(int)
        counters: Dict[str, int] = defaultdict(int)
        instructions = 0
        warps_launched = 0
        cores = []
        for core_id in range(cfg.num_cores):
            entries = []
            for slot in range(cfg.warps_per_core):
                ctx = WarpContext(core_id, slot, cfg)
                gen = warp_factory(ctx)
                if gen is not None:
                    warps_launched += 1
                    # [slot, generator, records, effects]
                    entries.append([slot, gen, [], {}])
            active = list(entries)
            while active:
                still = []
                for entry in active:
                    gen = entry[1]
                    records = entry[2]
                    effects = entry[3]
                    while True:
                        base = len(capture) if capture is not None else 0
                        try:
                            instr = next(gen)
                        except StopIteration:
                            if capture is not None and len(capture) > base:
                                effects.setdefault(
                                    len(records), []).extend(capture[base:])
                            entry[1] = None
                            break
                        if capture is not None and len(capture) > base:
                            effects.setdefault(
                                len(records), []).extend(capture[base:])
                        op = instr.op
                        if op is Op.COUNTER:
                            name, value = instr.payload
                            counters[name] += value
                            records.append(
                                (_COUNTER, 0, 0, instr.phase,
                                 _COUNTER_CAT, None, None, None, op))
                            continue
                        phase = instr.phase
                        cat = stall_category(op)
                        if op is Op.ALU:
                            c = instr.count
                            rec = (_FIXED, c, c + alu_lat - 1, phase, cat,
                                   None, None, None, op)
                        elif op is Op.LOAD:
                            idx = as_index_array(instr.indices)
                            if idx.size == 0:
                                rec = (_FIXED, 1, 1, phase, cat,
                                       None, None, None, op)
                            else:
                                region = instr.region
                                counters["elements_loaded:"
                                         + region.name] += idx.size
                                # Warp-sized batches dedup faster as a
                                # Python set than through np.unique.
                                if idx.size <= 64:
                                    base = region.base
                                    its = region.itemsize
                                    lines = sorted(
                                        {(base + v * its) >> line_shift
                                         for v in idx.tolist()})
                                else:
                                    lines = lines_for(region,
                                                      idx).tolist()
                                rec = (_LOAD, 1, 0, phase, cat,
                                       lines, idx, region, op)
                        elif op is Op.STORE:
                            idx = as_index_array(instr.indices)
                            if idx.size == 0:
                                rec = (_FIXED, 1, 1, phase, cat,
                                       None, None, None, op)
                            else:
                                region = instr.region
                                if idx.size <= 64:
                                    base = region.base
                                    its = region.itemsize
                                    lines = sorted(
                                        {(base + v * its) >> line_shift
                                         for v in idx.tolist()})
                                else:
                                    lines = lines_for(region,
                                                      idx).tolist()
                                rec = (_STORE, 1, store_aux, phase, cat,
                                       lines, idx, region, op)
                        elif op is Op.ATOMIC:
                            idx = as_index_array(instr.indices)
                            if idx.size == 0:
                                rec = (_FIXED, 1, 1, phase, cat,
                                       None, None, None, op)
                            else:
                                region = instr.region
                                # One sort gives both the conflict
                                # count (duplicate indices) and the
                                # ascending deduped line list: the
                                # index→address map is increasing, so
                                # adjacent dedup equals np.unique.
                                base = region.base
                                its = region.itemsize
                                shift = line_shift
                                ordered = sorted(idx.tolist())
                                prev = ordered[0]
                                nuniq = 1
                                lines = [(base + prev * its) >> shift]
                                for v in ordered:
                                    if v != prev:
                                        prev = v
                                        nuniq += 1
                                        ln = (base + v * its) >> shift
                                        if ln != lines[-1]:
                                            lines.append(ln)
                                extra = atomic_extra * (
                                    1 + idx.size - nuniq)
                                rec = (_ATOMIC, 1, extra, phase, cat,
                                       lines, idx, region, op)
                        elif op is Op.SHMEM_LOAD or op is Op.SHMEM_STORE:
                            c = instr.count
                            rec = (_FIXED, c, c + shmem_lat - 1, phase,
                                   cat, None, None, None, op)
                        elif op is Op.SYNC:
                            rec = (_SYNC_KIND, 1, 1, phase, cat,
                                   None, None, None, op)
                        elif op is Op.NOP:
                            rec = (_FIXED, 1, 1, phase, cat,
                                   None, None, None, op)
                        elif op in _UNIT_OPS:
                            raise SimulationError(
                                f"{op.name} issued but the kernel was "
                                "launched without a hardware unit")
                        else:
                            raise SimulationError(f"unknown opcode {op!r}")
                        records.append(rec)
                        instructions += 1
                        if instructions > max_instructions:
                            raise SimulationError(
                                f"kernel exceeded {max_instructions} "
                                "instructions; likely a non-terminating "
                                "kernel")
                        issue_phase[phase] += rec[1]
                        op_counts[op] += 1
                        if op is Op.SYNC:
                            break
                    if entry[1] is not None:
                        still.append(entry)
                active = still
            cores.append([(slot, tuple(records), effects or None)
                          for slot, _gen, records, effects in entries])
        return _KernelTrace(cores, instructions, warps_launched,
                            dict(op_counts), dict(issue_phase),
                            dict(counters))

    # ------------------------------------------------------------------
    def _replay(self, trace: _KernelTrace, hint: ReplayHint,
                flush_caches: bool, max_instructions: int) -> KernelStats:
        """Re-run compiled records through the reference event loop.

        Every scheduling decision, stall attribution and memory-walk
        mutation below mirrors :meth:`GPU.run_kernel` line for line —
        the only differences are that instructions come from records
        instead of generators, and static totals (instruction counts,
        issue-phase cycles, counters) are folded in at the end.
        """
        cfg = self.config
        mem = self.memory
        if flush_caches:
            mem.flush()
        mem.begin_kernel()
        stats = KernelStats()
        dram_before = mem.dram_accesses
        registry = get_registry()
        cache_before = mem.cache_counts() if registry.enabled else None
        profiler = get_profiler()
        prof_on = profiler.enabled
        kernel_start = perf_counter() if prof_on else 0.0
        digester = get_digester()
        dig_on = digester.enabled
        if dig_on:
            digester.begin_kernel()
        if trace.instructions > max_instructions:
            raise SimulationError(
                f"kernel exceeded {max_instructions} instructions; "
                "likely a non-terminating kernel")

        effect = hint.effect
        heap: List[Tuple[int, int]] = []
        cores: List[List[_RWarp]] = []
        for core_id, entries in enumerate(trace.cores):
            warps = [_RWarp(slot, recs, eff)
                     for slot, recs, eff in entries]
            cores.append(warps)
            if warps:
                heapq.heappush(heap, (0, core_id))

        if dig_on:
            # Provenance parity path: route memory through the standard
            # hierarchy walk so note_cache/note_mem records land in the
            # reference order; the fast inline walk below skips them.
            access = mem.access

            def walk(core_id: int, rec, now: int) -> int:
                idx = rec[6]
                if type(idx) is tuple:  # elementwise (a, b) span marker
                    idx = np.arange(idx[0], idx[1], dtype=np.int64)
                latency, _ = access(core_id, rec[7], idx, now=now)
                return latency
        else:
            l1_list = mem.l1
            l2, l3 = mem.l2, mem.l3
            l1_lat = cfg.l1.hit_latency
            l2_lat = cfg.l2.hit_latency if cfg.l2 is not None else 0
            l3_lat = cfg.l3.hit_latency if cfg.l3 is not None else 0
            dram_lat = cfg.dram_latency_cycles
            dram_service = cfg.dram_service_cycles
            line_tp = cfg.line_throughput

            def walk(core_id: int, rec, now: int) -> int:
                lines = rec[5]
                l1 = l1_list[core_id]
                worst = 0
                for line in lines:
                    if l1.lookup_fast(line):
                        lat = l1_lat
                    elif l2 is not None and l2.lookup_fast(line):
                        lat = l2_lat
                    elif l3 is not None and l3.lookup_fast(line):
                        lat = l3_lat
                    else:
                        mem.dram_accesses += 1
                        start = mem._dram_free
                        if now > start:
                            start = now
                        mem._dram_free = start + dram_service
                        lat = start - now + dram_lat
                    if lat > worst:
                        worst = lat
                return worst + (len(lines) - 1) * line_tp

        stall_cells = stats.stall_cells
        phase_cycles = stats.phase_cycles
        core_time = [0] * cfg.num_cores
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            t, core_id = pop(heap)
            warps = cores[core_id]
            # One pass finds the first minimal-ready running warp
            # (strict < keeps the reference's slot-order tie-break).
            warp = None
            best = 1 << 62
            for w in warps:
                if w.state == 0 and w.ready < best:
                    warp = w
                    best = w.ready
            if warp is None:
                blocked = [w for w in warps if w.state == 1]
                if blocked:
                    release = t
                    for w in blocked:
                        if w.ready > release:
                            release = w.ready
                    for w in blocked:
                        wait = release - w.ready
                        if wait:
                            stall_cells[
                                (core_id, w.slot, _SYNC_CAT)] += wait
                            if dig_on:
                                digester.note_stall(
                                    w.ready, core_id, w.slot,
                                    _SYNC_CAT, wait)
                        w.state = 0
                        w.ready = release
                    push(heap, (release, core_id))
                continue

            if best > t:
                gap = best - t
                stall_cells[(core_id, warp.slot, warp.cat)] += gap
                phase_cycles[warp.phase] += gap
                if dig_on:
                    digester.note_stall(t, core_id, warp.slot,
                                        warp.cat, gap)
                t = best

            i = warp.i
            eff = warp.eff
            if eff is not None:
                batches = eff.get(i)
                if batches is not None:
                    for args in batches:
                        effect(*args)
            if i == warp.n:
                warp.state = 2
                alive = False
                for w in warps:
                    if w.state != 2:
                        alive = True
                        break
                if alive:
                    push(heap, (t, core_id))
                if t > core_time[core_id]:
                    core_time[core_id] = t
                continue
            warp.i = i + 1
            rec = warp.recs[i]
            kind = rec[0]
            if kind == 0:
                done = t + rec[2]
            elif kind == 1:
                done = t + 1 + walk(core_id, rec, t)
            elif kind == 3:
                done = t + 1 + walk(core_id, rec, t) + rec[2]
            elif kind == 2:
                walk(core_id, rec, t)
                done = t + rec[2]
            elif kind == 4:
                warp.state = 1
                done = t + 1
            else:  # _COUNTER: zero cost, but ready resets to now
                done = t
            if dig_on and kind != 5:
                digester.note_issue(t, core_id, warp.slot, rec[8],
                                    rec[3], done)
            warp.ready = done
            warp.cat = rec[4]
            warp.phase = rec[3]
            t += rec[1]
            if t > core_time[core_id]:
                core_time[core_id] = t
            push(heap, (t, core_id))

        for core_id, warps in enumerate(cores):
            pending = [w for w in warps if w.state == 1]
            if pending:
                raise SimulationError(
                    f"core {core_id}: {len(pending)} warps stuck at a "
                    "barrier at kernel end (mismatched SYNC counts)")
            tail = 0
            for w in warps:
                if w.ready > tail:
                    tail = w.ready
            if tail > core_time[core_id]:
                core_time[core_id] = tail

        stats.total_cycles = max(core_time) if core_time else 0
        stats.instructions = trace.instructions
        stats.warps_launched = trace.warps_launched
        op_counts = stats.op_counts
        for op, c in trace.op_counts.items():
            op_counts[op] += c
        for ph, c in trace.issue_phase.items():
            phase_cycles[ph] += c
        stat_counters = stats.counters
        for name, v in trace.counters.items():
            stat_counters[name] += v
        for (_core, _warp, cat), cycles in stall_cells.items():
            stats.stall_cycles[cat] += cycles
        stats.cache = mem.cache_stats()
        stats.dram_accesses = mem.dram_accesses - dram_before
        if registry.enabled:
            registry.publish_kernel_stats(stats)
            mem.publish_metrics(registry, cache_before,
                                stats.dram_accesses)
        if prof_on:
            end = perf_counter()
            profiler.add("fast/replay", end - kernel_start)
            profiler.end_kernel(stats.total_cycles, end - kernel_start)
        if dig_on:
            digester.end_kernel(stats)
        return stats
