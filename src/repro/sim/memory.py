"""Global-memory address space and the cache hierarchy walker.

Kernels never fabricate raw addresses; they allocate named
:class:`Region` objects from a :class:`MemoryMap` (one per kernel
environment) and issue loads/stores as ``(region, element indices)``.
The hierarchy converts lane indices to cache lines, walks L1 -> L2 ->
(L3) -> DRAM per line, and returns the instruction's latency under the
coalescing model of DESIGN.md §5: worst-level latency plus a per-extra-
line throughput charge.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.obs.profile import get_profiler
from repro.obs.provenance import get_digester
from repro.sim.cache import Cache, publish_cache_metrics
from repro.sim.config import GPUConfig
from repro.sim.stats import CacheStats


class Region:
    """A named, contiguous global-memory allocation."""

    __slots__ = ("name", "base", "itemsize", "length")

    def __init__(self, name: str, base: int, itemsize: int, length: int) -> None:
        self.name = name
        self.base = base
        self.itemsize = itemsize
        self.length = length

    @property
    def nbytes(self) -> int:
        """Size of the region in bytes."""
        return self.itemsize * self.length

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        return self.base + index * self.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Region({self.name!r}, base=0x{self.base:x}, "
            f"itemsize={self.itemsize}, length={self.length})"
        )


class MemoryMap:
    """Sequential allocator of :class:`Region` objects.

    Regions are aligned to 256 bytes and padded by one line so that two
    regions never share a cache line — which keeps the cache model's
    attribution of hits per array honest.
    """

    ALIGN = 256

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, length: int, itemsize: int = 8) -> Region:
        """Allocate ``length`` elements of ``itemsize`` bytes."""
        if length < 0 or itemsize <= 0:
            raise ConfigError("region length must be >= 0 and itemsize > 0")
        if name in self._regions:
            raise ConfigError(f"region {name!r} already allocated")
        region = Region(name, self._next, itemsize, length)
        nbytes = max(1, region.nbytes)
        self._next += (nbytes + self.ALIGN - 1) // self.ALIGN * self.ALIGN
        self._next += self.ALIGN  # guard gap
        self._regions[name] = region
        return region

    def alloc_like(self, name: str, array: np.ndarray) -> Region:
        """Allocate a region shaped like a numpy array."""
        return self.alloc(name, int(array.size), int(array.itemsize))

    def __getitem__(self, name: str) -> Region:
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def regions(self) -> List[Region]:
        """All allocated regions in allocation order."""
        return list(self._regions.values())


class MemoryHierarchy:
    """Per-core L1s over a shared L2 (and optional L3) over DRAM."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self._line_shift = config.l1.line_bytes.bit_length() - 1
        self.l1: List[Cache] = [
            Cache(config.l1, f"L1[{core}]") for core in range(config.num_cores)
        ]
        self.l2: Optional[Cache] = (
            Cache(config.l2, "L2") if config.l2 is not None else None
        )
        self.l3: Optional[Cache] = (
            Cache(config.l3, "L3") if config.l3 is not None else None
        )
        self.dram_accesses = 0
        self._dram_free = 0
        if self.l2 is not None and config.l2.line_bytes != config.l1.line_bytes:
            raise ConfigError("all cache levels must share one line size")
        if self.l3 is not None and config.l3.line_bytes != config.l1.line_bytes:
            raise ConfigError("all cache levels must share one line size")

    # ------------------------------------------------------------------
    def lines_for(self, region: Region, indices: np.ndarray) -> np.ndarray:
        """Unique cache-line numbers touched by ``region[indices]``."""
        addrs = region.base + indices * region.itemsize
        return np.unique(addrs >> self._line_shift)

    def access_line(self, core_id: int, line: int, now: int = 0,
                    prof=None, dig=None) -> int:
        """Walk the hierarchy for one line; returns its latency.

        DRAM fills additionally queue behind a shared memory-controller
        timeline (``dram_service_cycles`` occupancy per line), so total
        DRAM *traffic* costs time even when individual latencies are
        hidden by warp-level parallelism. This is the bandwidth term
        that makes graph processing memory-intensive (Fig. 12) and
        charges S_em for its doubled edge reads.

        ``prof`` is an enabled host profiler (or ``None``) and ``dig``
        an enabled state digester (or ``None``), threaded down into the
        per-level lookups.
        """
        cfg = self.config
        if self.l1[core_id].lookup(line, prof, dig):
            return cfg.l1.hit_latency
        if self.l2 is not None and self.l2.lookup(line, prof, dig):
            return cfg.l2.hit_latency
        if self.l3 is not None and self.l3.lookup(line, prof, dig):
            return cfg.l3.hit_latency
        self.dram_accesses += 1
        if prof is not None:
            # Count-only phase: the fill arithmetic below is trivial,
            # but the fill *rate* is what a vectorized memory model
            # must reproduce, so it earns a call counter.
            prof.add("mem/dram", 0.0)
        start = max(now, self._dram_free)
        self._dram_free = start + cfg.dram_service_cycles
        return (start - now) + cfg.dram_latency_cycles

    def access(
        self, core_id: int, region: Region, indices: np.ndarray,
        now: int = 0,
    ) -> Tuple[int, int]:
        """Charge a coalesced warp access at time ``now``.

        Returns ``(latency_cycles, num_lines)``. Latency is the worst
        per-line latency plus ``line_throughput`` cycles for each line
        beyond the first (memory pipeline serialization).
        """
        if not 0 <= core_id < len(self.l1):
            raise SimulationError(f"core id {core_id} out of range")
        profiler = get_profiler()
        prof = profiler if profiler.enabled else None
        digester = get_digester()
        dig = digester if digester.enabled else None
        start = perf_counter() if prof is not None else 0.0
        if indices.size <= 64:
            # Warp-sized accesses dominate; a python-set dedup beats
            # np.unique at this size.  sorted() keeps the walk order
            # (and so LRU/DRAM-queue state) identical to lines_for.
            base = region.base
            its = region.itemsize
            shift = self._line_shift
            lines = sorted({(base + v * its) >> shift
                            for v in indices.tolist()})
        else:
            lines = self.lines_for(region, indices).tolist()
        nlines = len(lines)
        if nlines == 0:
            if prof is not None:
                prof.add("mem/access", perf_counter() - start)
            return 0, 0
        worst = 0
        if prof is None and dig is None:
            # Hot path: per-line hierarchy walk with the hook-free
            # lookups (bit-identical to access_line, see
            # Cache.lookup_fast).
            cfg = self.config
            l1 = self.l1[core_id]
            l2, l3 = self.l2, self.l3
            for line in lines:
                if l1.lookup_fast(line):
                    latency = cfg.l1.hit_latency
                elif l2 is not None and l2.lookup_fast(line):
                    latency = cfg.l2.hit_latency
                elif l3 is not None and l3.lookup_fast(line):
                    latency = cfg.l3.hit_latency
                else:
                    self.dram_accesses += 1
                    fill = self._dram_free
                    if now > fill:
                        fill = now
                    self._dram_free = fill + cfg.dram_service_cycles
                    latency = (fill - now) + cfg.dram_latency_cycles
                if latency > worst:
                    worst = latency
        else:
            for line in lines:
                latency = self.access_line(core_id, line, now, prof, dig)
                if latency > worst:
                    worst = latency
        total = worst + (nlines - 1) * self.config.line_throughput
        if prof is not None:
            prof.add("mem/access", perf_counter() - start)
        if dig is not None:
            dig.note_mem(now, core_id, nlines, total)
        return total, nlines

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, CacheStats]:
        """Aggregate per-level stats (L1s merged across cores)."""
        merged: Dict[str, CacheStats] = {}
        l1_total = CacheStats()
        for cache in self.l1:
            l1_total.merge(cache.stats)
        merged["L1"] = l1_total
        if self.l2 is not None:
            merged["L2"] = self.l2.stats
        if self.l3 is not None:
            merged["L3"] = self.l3.stats
        return merged

    def cache_counts(self) -> Dict[str, Tuple[int, int]]:
        """Cumulative ``(hits, misses)`` per merged level.

        The delta baseline for per-kernel metrics publication — cache
        tag state (and so its counters) persists across kernels on one
        GPU, but metrics want per-kernel increments.
        """
        return {name: (cs.hits, cs.misses)
                for name, cs in self.cache_stats().items()}

    def publish_metrics(self, registry, before=None,
                        dram_accesses: int = 0) -> None:
        """Fold this kernel's memory traffic into a metrics registry.

        ``before`` is the :meth:`cache_counts` snapshot taken at kernel
        start; counters receive only the delta.
        """
        registry.counter(
            "sim_dram_accesses_total", "DRAM line fills"
        ).inc(dram_accesses)
        before = before or {}
        for name, cache in [("L1", None), ("L2", self.l2),
                            ("L3", self.l3)]:
            if name == "L1":
                merged = CacheStats()
                for level in self.l1:
                    merged.merge(level.stats)
                hits, misses = merged.hits, merged.misses
            elif cache is None:
                continue
            else:
                hits, misses = cache.stats.hits, cache.stats.misses
            prev_hits, prev_misses = before.get(name, (0, 0))
            publish_cache_metrics(registry, name, hits - prev_hits,
                                  misses - prev_misses)

    def begin_kernel(self) -> None:
        """Reset the controller timeline — kernel clocks start at 0."""
        self._dram_free = 0

    def flush(self) -> None:
        """Invalidate every level (between unrelated kernels)."""
        for cache in self.l1:
            cache.flush()
        if self.l2 is not None:
            self.l2.flush()
        if self.l3 is not None:
            self.l3.flush()
