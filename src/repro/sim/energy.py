"""First-order energy model over kernel statistics.

The hardware-scheme papers SparseWeaver compares against (SCU [42],
GraphPEG [32]) motivate themselves with energy as much as time; this
model extends the reproduction with the same lens. It is a
post-processing pass over :class:`~repro.sim.stats.KernelStats` —
component counts x per-event energies — using the usual
architecture-textbook orders of magnitude (45nm-class numbers, pJ):
an ALU op costs ~1 pJ, SRAM accesses tens of pJ growing with capacity,
and a 64B DRAM fill ~2 nJ, dwarfing everything else. Graph processing
being memory-bound, total energy tracks DRAM traffic — which is why
balanced schedules that avoid redundant reads also save energy.

Only *relative* comparisons between schedules are meaningful; absolute
joules inherit every simplification of the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.instructions import Op
from repro.sim.stats import KernelStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules."""

    alu_pj: float = 1.0
    issue_pj: float = 0.5          # fetch/decode/operand per instruction
    shmem_pj: float = 11.0         # shared-memory bank access
    l1_pj: float = 28.0
    l2_pj: float = 90.0
    l3_pj: float = 180.0
    dram_pj: float = 2_000.0       # 64B line fill
    atomic_extra_pj: float = 15.0  # read-modify-write overhead
    weaver_pj: float = 8.0         # ST/DT access + FSM step
    static_pj_per_cycle: float = 3.0  # leakage across the chip

    def estimate(self, stats: KernelStats) -> "EnergyBreakdown":
        """Energy per component for one kernel (or merged run)."""
        parts: Dict[str, float] = {}
        ops = stats.op_counts
        dynamic_instr = sum(
            count for op, count in ops.items() if op != Op.COUNTER
        )
        parts["issue"] = dynamic_instr * self.issue_pj
        parts["alu"] = ops.get(Op.ALU, 0) * self.alu_pj
        shmem_ops = (ops.get(Op.SHMEM_LOAD, 0)
                     + ops.get(Op.SHMEM_STORE, 0)
                     + ops.get(Op.EGHW_PUSH, 0)
                     + ops.get(Op.EGHW_FETCH, 0))
        parts["shared"] = shmem_ops * self.shmem_pj
        weaver_ops = (ops.get(Op.WEAVER_REG, 0)
                      + ops.get(Op.WEAVER_DEC_ID, 0)
                      + ops.get(Op.WEAVER_DEC_LOC, 0)
                      + ops.get(Op.WEAVER_SKIP, 0))
        parts["weaver"] = weaver_ops * self.weaver_pj
        parts["atomic"] = ops.get(Op.ATOMIC, 0) * self.atomic_extra_pj

        cache_energy = 0.0
        for name, cs in stats.cache.items():
            per = {"L1": self.l1_pj, "L2": self.l2_pj,
                   "L3": self.l3_pj}.get(name, self.l2_pj)
            cache_energy += cs.accesses * per
        parts["cache"] = cache_energy
        parts["dram"] = stats.dram_accesses * self.dram_pj
        parts["static"] = stats.total_cycles * self.static_pj_per_cycle
        return EnergyBreakdown(picojoules=parts)


@dataclass
class EnergyBreakdown:
    """Per-component energy of one run."""

    picojoules: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        """Total energy in picojoules."""
        return sum(self.picojoules.values())

    @property
    def total_nj(self) -> float:
        """Total energy in nanojoules."""
        return self.total_pj / 1_000.0

    def dominant(self) -> str:
        """The largest component (DRAM, for any memory-bound run)."""
        if not self.picojoules:
            return "none"
        return max(self.picojoules, key=self.picojoules.get)

    def summary(self) -> str:
        """One-line textual breakdown."""
        parts = ", ".join(
            f"{k}={v / 1000:.1f}nJ"
            for k, v in sorted(self.picojoules.items(),
                               key=lambda kv: -kv[1])
        )
        return f"total={self.total_nj:.1f}nJ ({parts})"


def estimate_energy(stats: KernelStats,
                    model: EnergyModel = None) -> EnergyBreakdown:
    """Convenience wrapper with the default model."""
    return (model or EnergyModel()).estimate(stats)
