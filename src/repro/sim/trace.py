"""Optional execution tracing for the simulator.

Attach an :class:`ExecutionTracer` to ``GPU.run_kernel(tracer=...)`` to
record every issued instruction — (time, core, warp, op, phase,
completion) — and every attributed stall gap — (time, core, warp,
stall class, cycles). Used for debugging kernels, for the
pipeline-diagram style inspection the SimX simulator offers, and as
the simulated-cycle source for Chrome trace export
(:func:`repro.obs.tracing.execution_trace_events`).

Both event streams are bounded; when a bound is hit the tracer warns
once and counts everything it drops, so a truncated trace is always
visibly truncated (``summary()`` / ``repr``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.instructions import Op, Phase
from repro.sim.stats import StallCat


@dataclass(frozen=True)
class TraceEvent:
    """One issued warp instruction."""

    time: int
    core: int
    warp: int
    op: Op
    phase: Phase
    done: int

    @property
    def latency(self) -> int:
        """Completion minus issue time."""
        return self.done - self.time


@dataclass(frozen=True)
class StallEvent:
    """One attributed stall gap (a warp waited before issuing)."""

    time: int
    core: int
    warp: int
    cat: StallCat
    cycles: int


class ExecutionTracer:
    """Bounded in-memory instruction + stall trace."""

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.stalls: List[StallEvent] = []
        self.dropped = 0
        self.dropped_stalls = 0
        self._warned = False

    def _warn_truncation(self) -> None:
        if self._warned:
            return
        self._warned = True
        warnings.warn(
            f"ExecutionTracer bound of {self.max_events} events reached; "
            "further events are dropped (counted in summary()['dropped'])",
            RuntimeWarning, stacklevel=3,
        )

    def record(self, time: int, core: int, warp: int, op: Op,
               phase: Phase, done: int) -> None:
        """Append one instruction event (drops beyond the bound)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            self._warn_truncation()
            return
        self.events.append(TraceEvent(time, core, warp, op, phase, done))

    def record_stall(self, time: int, core: int, warp: int,
                     cat: StallCat, cycles: int) -> None:
        """Append one stall event (drops beyond the bound)."""
        if len(self.stalls) >= self.max_events:
            self.dropped_stalls += 1
            self._warn_truncation()
            return
        self.stalls.append(StallEvent(time, core, warp, cat, cycles))

    # ------------------------------------------------------------------
    def filter(self, op: Optional[Op] = None, core: Optional[int] = None,
               warp: Optional[int] = None) -> List[TraceEvent]:
        """Events matching the given criteria."""
        out = self.events
        if op is not None:
            out = [e for e in out if e.op == op]
        if core is not None:
            out = [e for e in out if e.core == core]
        if warp is not None:
            out = [e for e in out if e.warp == warp]
        return out

    def stall_summary(self) -> Dict[StallCat, int]:
        """Recorded stall cycles folded by category."""
        out: Dict[StallCat, int] = {}
        for s in self.stalls:
            out[s.cat] = out.get(s.cat, 0) + s.cycles
        return out

    def summary(self) -> Dict[str, int]:
        """Counts of what was recorded — and what was not.

        ``dropped``/``dropped_stalls`` are nonzero exactly when the
        bound was hit; downstream reports must surface them so a
        truncated trace is never mistaken for a complete one.
        """
        return {
            "events": len(self.events),
            "stalls": len(self.stalls),
            "max_events": self.max_events,
            "dropped": self.dropped,
            "dropped_stalls": self.dropped_stalls,
        }

    def timeline(self, core: int, limit: int = 50) -> str:
        """Human-readable per-core issue log."""
        lines = [
            f"t={e.time:<8} w{e.warp:<3} {e.op.name:<14} "
            f"{e.phase.name:<12} done={e.done}"
            for e in self.filter(core=core)[:limit]
        ]
        return "\n".join(lines)

    def occupancy_chart(self, core: int = 0, buckets: int = 60) -> str:
        """ASCII issue-density timeline: one row per warp, one column
        per time bucket; darker marks mean more instructions issued in
        that window. The at-a-glance view of imbalance: a lone busy row
        is the straggler warp everyone else lockstep-waits for."""
        events = self.filter(core=core)
        if not events:
            return "(no events)"
        t_end = max(e.time for e in events) + 1
        warps = sorted({e.warp for e in events})
        grid = {w: [0] * buckets for w in warps}
        for e in events:
            grid[e.warp][min(buckets - 1, e.time * buckets // t_end)] += 1
        peak = max(max(row) for row in grid.values()) or 1
        shades = " .:*#"
        lines = [f"issue density, core {core}, 0..{t_end} cycles"]
        for w in warps:
            cells = "".join(
                shades[min(len(shades) - 1,
                           (count * (len(shades) - 1) + peak - 1) // peak)]
                for count in grid[w]
            )
            lines.append(f"w{w:<3}|{cells}|")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        extra = ""
        if self.dropped or self.dropped_stalls:
            extra = (f", TRUNCATED: dropped={self.dropped} "
                     f"dropped_stalls={self.dropped_stalls}")
        return (f"ExecutionTracer(events={len(self.events)}, "
                f"stalls={len(self.stalls)}, "
                f"max_events={self.max_events}{extra})")
