"""Optional execution tracing for the simulator.

Attach an :class:`ExecutionTracer` to ``GPU.run_kernel(tracer=...)`` to
record every issued instruction — (time, core, warp, op, phase,
completion). Used for debugging kernels and for the pipeline-diagram
style inspection the SimX simulator offers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.instructions import Op, Phase


@dataclass(frozen=True)
class TraceEvent:
    """One issued warp instruction."""

    time: int
    core: int
    warp: int
    op: Op
    phase: Phase
    done: int

    @property
    def latency(self) -> int:
        """Completion minus issue time."""
        return self.done - self.time


class ExecutionTracer:
    """Bounded in-memory instruction trace."""

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: int, core: int, warp: int, op: Op,
               phase: Phase, done: int) -> None:
        """Append one event (drops beyond the bound)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, core, warp, op, phase, done))

    # ------------------------------------------------------------------
    def filter(self, op: Optional[Op] = None, core: Optional[int] = None,
               warp: Optional[int] = None) -> List[TraceEvent]:
        """Events matching the given criteria."""
        out = self.events
        if op is not None:
            out = [e for e in out if e.op == op]
        if core is not None:
            out = [e for e in out if e.core == core]
        if warp is not None:
            out = [e for e in out if e.warp == warp]
        return out

    def timeline(self, core: int, limit: int = 50) -> str:
        """Human-readable per-core issue log."""
        lines = [
            f"t={e.time:<8} w{e.warp:<3} {e.op.name:<14} "
            f"{e.phase.name:<12} done={e.done}"
            for e in self.filter(core=core)[:limit]
        ]
        return "\n".join(lines)

    def occupancy_chart(self, core: int = 0, buckets: int = 60) -> str:
        """ASCII issue-density timeline: one row per warp, one column
        per time bucket; darker marks mean more instructions issued in
        that window. The at-a-glance view of imbalance: a lone busy row
        is the straggler warp everyone else lockstep-waits for."""
        events = self.filter(core=core)
        if not events:
            return "(no events)"
        t_end = max(e.time for e in events) + 1
        warps = sorted({e.warp for e in events})
        grid = {w: [0] * buckets for w in warps}
        for e in events:
            grid[e.warp][min(buckets - 1, e.time * buckets // t_end)] += 1
        peak = max(max(row) for row in grid.values()) or 1
        shades = " .:*#"
        lines = [f"issue density, core {core}, 0..{t_end} cycles"]
        for w in warps:
            cells = "".join(
                shades[min(len(shades) - 1,
                           (count * (len(shades) - 1) + peak - 1) // peak)]
                for count in grid[w]
            )
            lines.append(f"w{w:<3}|{cells}|")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
