"""Simulator engine registry: the first-class ``engine=`` surface.

An *engine* decides which execution loop a run's kernels go through:

* ``reference`` — the per-instruction interpreter of
  :mod:`repro.sim.gpu`.  Always available, always correct; the
  ground truth every other engine must match bit-for-bit.
* ``fast`` — :class:`repro.sim.fast.FastGPU`: trace-and-replay for
  covered kernels, per-kernel fallback to the reference loop for the
  rest.  Bit-identical cycles, stall cells, summary dicts and
  provenance ledgers.
* ``auto`` — per-run selection: ``fast`` unless the schedule needs a
  hardware unit for its gather kernel (SparseWeaver/EGHW), in which
  case the reference loop is used wholesale.

Engines are deliberately *excluded* from job identity: the same spec
produces the same cycles under every engine, so cache keys, journal
entries and fleet hashes are engine-blind.  The engine choice is
recorded in telemetry and run metadata instead.

Resolution precedence: explicit ``engine=`` argument, else the
``REPRO_ENGINE`` environment variable, else ``reference``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

try:  # pragma: no cover - typing fallback for very old interpreters
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object

    def runtime_checkable(cls):
        return cls

from repro.errors import ConfigError
from repro.sim.config import GPUConfig
from repro.sim.fast import FastGPU
from repro.sim.gpu import GPU

#: Environment variable consulted when no explicit engine is given.
ENGINE_ENV = "REPRO_ENGINE"

#: Engine used when neither argument nor environment selects one.
DEFAULT_ENGINE = "reference"


@runtime_checkable
class SimulatorEngine(Protocol):
    """What an execution engine must provide.

    ``build_gpu`` returns the GPU object a run drives; ``schedule``
    (when the caller has one) lets per-run selection policies like
    ``auto`` pick a loop per workload.  A registered engine's GPU must
    produce bit-identical :class:`~repro.sim.stats.KernelStats` to the
    reference interpreter — see ``docs/engines.md`` for the validation
    recipe.
    """

    name: str

    def build_gpu(self, config: GPUConfig, schedule=None) -> GPU:
        """Construct the GPU this engine runs kernels on."""
        ...


class ReferenceEngine:
    """The per-instruction interpreter (ground truth)."""

    name = "reference"

    def build_gpu(self, config: GPUConfig, schedule=None) -> GPU:
        return GPU(config)


class FastEngine:
    """Trace-and-replay with per-kernel reference fallback."""

    name = "fast"

    def build_gpu(self, config: GPUConfig, schedule=None) -> GPU:
        return FastGPU(config)


class AutoEngine:
    """Per-run selection: fast unless the schedule needs a unit."""

    name = "auto"

    def build_gpu(self, config: GPUConfig, schedule=None) -> GPU:
        if schedule is not None and getattr(schedule, "uses_hardware_unit",
                                            False):
            return GPU(config)
        return FastGPU(config)


_ENGINES: Dict[str, SimulatorEngine] = {}


def register_engine(engine: SimulatorEngine) -> SimulatorEngine:
    """Register an engine under its ``name`` (last writer wins)."""
    name = getattr(engine, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigError("engines must expose a non-empty string 'name'")
    if not callable(getattr(engine, "build_gpu", None)):
        raise ConfigError(
            f"engine {name!r} must expose build_gpu(config, schedule=None)")
    _ENGINES[name] = engine
    return engine


def available_engines() -> List[str]:
    """Sorted names of every registered engine."""
    return sorted(_ENGINES)


def resolve_engine_name(name: Optional[str] = None) -> str:
    """Apply the argument > ``REPRO_ENGINE`` > default precedence."""
    if name is not None:
        return str(name)
    env = os.environ.get(ENGINE_ENV, "").strip()
    return env or DEFAULT_ENGINE


def get_engine(name: Optional[str] = None) -> SimulatorEngine:
    """Look an engine up by name (``None`` = resolve from environment)."""
    resolved = resolve_engine_name(name)
    try:
        return _ENGINES[resolved]
    except KeyError:
        raise ConfigError(
            f"unknown simulator engine {resolved!r}; available: "
            f"{', '.join(available_engines())}"
        ) from None


def build_gpu(config: GPUConfig, engine: Optional[str] = None,
              schedule=None) -> GPU:
    """Registry-routed replacement for direct ``GPU(config)`` calls."""
    return get_engine(engine).build_gpu(config, schedule=schedule)


register_engine(ReferenceEngine())
register_engine(FastEngine())
register_engine(AutoEngine())
