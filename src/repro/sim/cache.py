"""Set-associative LRU cache model with true tag state.

The cache-size sweeps of Figs. 14-15 only mean something if capacity and
associativity actually change hit rates, so this is a real tag store:
per-set LRU lists over line addresses. Lists stay tiny (``ways`` long),
making move-to-front cheap.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable

from repro.sim.config import CacheConfig
from repro.sim.stats import CacheStats


class Cache:
    """One cache level."""

    __slots__ = ("config", "name", "stats", "_sets", "_set_mask",
                 "_phase")

    def __init__(self, config: CacheConfig, name: str) -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._sets = [[] for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        # Host-profiler phase: "L1[3]" -> "mem/l1" (nested under the
        # top-level execute phase, see repro.obs.profile).
        self._phase = "mem/" + name.split("[", 1)[0].lower()

    def lookup(self, line: int, prof=None, dig=None) -> bool:
        """Access ``line``; returns True on hit. Misses allocate.

        ``prof`` is an enabled :class:`~repro.obs.profile.PhaseProfiler`
        and ``dig`` an enabled
        :class:`~repro.obs.provenance.StateDigester` (or ``None``):
        lookups are the memory model's hot path, so the caller
        pre-resolves the enabled checks instead of this method
        consulting the globals each call.
        """
        start = perf_counter() if prof is not None else 0.0
        if self._set_mask >= 0 and (self._set_mask & (self._set_mask + 1)) == 0:
            index = line & self._set_mask
        else:  # non-power-of-two set count
            index = line % len(self._sets)
        ways = self._sets[index]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            self.stats.hits += 1
            hit = True
        else:
            self.stats.misses += 1
            ways.insert(0, line)
            if len(ways) > self.config.ways:
                ways.pop()
            hit = False
        if prof is not None:
            prof.add(self._phase, perf_counter() - start)
        if dig is not None:
            dig.note_cache(self._phase, hit)
        return hit

    def lookup_fast(self, line: int) -> bool:
        """:meth:`lookup` minus the profiler/digester hooks.

        The fast engine's replay loop (:mod:`repro.sim.fast`) resolves
        those hooks once per kernel instead of once per line; tag
        state, LRU movement and hit/miss counters are updated exactly
        as :meth:`lookup` would, so the two are interchangeable
        bit-for-bit.
        """
        if self._set_mask >= 0 and not (self._set_mask & (self._set_mask + 1)):
            ways = self._sets[line & self._set_mask]
        else:  # non-power-of-two set count
            ways = self._sets[line % len(self._sets)]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.insert(0, line)
        if len(ways) > self.config.ways:
            ways.pop()
        return False

    def contains(self, line: int) -> bool:
        """Non-mutating presence check (no stats, no LRU update)."""
        if self._set_mask >= 0 and (self._set_mask & (self._set_mask + 1)) == 0:
            index = line & self._set_mask
        else:
            index = line % len(self._sets)
        return line in self._sets[index]

    def warm(self, lines: Iterable[int]) -> None:
        """Pre-load lines without counting stats (test fixtures)."""
        for line in lines:
            if self._set_mask >= 0 and (self._set_mask & (self._set_mask + 1)) == 0:
                index = line & self._set_mask
            else:
                index = line % len(self._sets)
            ways = self._sets[index]
            if line not in ways:
                ways.insert(0, line)
                if len(ways) > self.config.ways:
                    ways.pop()

    def flush(self) -> None:
        """Invalidate all lines (stats are kept)."""
        for ways in self._sets:
            ways.clear()

    @property
    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cache({self.name}, {self.config.size_bytes}B, "
            f"{self.config.ways}-way, occ={self.occupancy})"
        )


def publish_cache_metrics(registry, level: str, hits: int,
                          misses: int) -> None:
    """Fold one level's per-kernel hit/miss delta into a registry.

    The ``sim_cache_accesses_total{level,outcome}`` counter is the
    registry-side view of :class:`~repro.sim.stats.CacheStats`; the
    memory hierarchy publishes deltas at kernel end.
    """
    counter = registry.counter("sim_cache_accesses_total",
                               "Cache accesses by level and outcome")
    if hits:
        counter.inc(hits, level=level, outcome="hit")
    if misses:
        counter.inc(misses, level=level, outcome="miss")
