"""Simulator hardware configurations.

``GPUConfig.vortex_paper()`` reproduces the evaluation setup of Section V:
2 sockets x 3 cores, 32 warps/core, 32 threads/warp, 64KB L1 and 1MB L2 —
with the SparseWeaver penalty (L1 reduced to 32KB to pay for 512 ST/DT
entries) applied by :meth:`GPUConfig.with_weaver_penalty`.

``vortex_bench()`` is a smaller preset the Python engine simulates in
seconds; all benchmarks use it unless told otherwise. ``ampere_like`` and
``ada_like`` stand in for the paper's Nvidia A30 / RTX 4090 measurements
(Figs. 3-4): more resident warps, larger caches, faster memory clocking.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: capacity, line size, associativity, hit latency."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 8
    hit_latency: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("cache size must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("cache line size must be a positive power of two")
        if self.ways <= 0:
            raise ConfigError("cache associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ConfigError(
                "cache size must be a multiple of line_bytes * ways"
            )
        if self.hit_latency < 1:
            raise ConfigError("hit latency must be at least 1 cycle")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class GPUConfig:
    """Full simulator configuration.

    ``mem_freq_ratio`` is the "n" of Fig. 12: the GPU core clock is ``n``
    times the DRAM clock, so DRAM latency in core cycles scales by ``n``.
    """

    num_sockets: int = 2
    cores_per_socket: int = 3
    warps_per_core: int = 32
    threads_per_warp: int = 32
    l1: CacheConfig = CacheConfig(64 * KB)
    l2: Optional[CacheConfig] = CacheConfig(1 * MB, hit_latency=20)
    l3: Optional[CacheConfig] = None
    dram_latency: int = 100
    mem_freq_ratio: int = 1
    line_throughput: int = 2
    dram_service: int = 4
    alu_latency: int = 1
    shmem_latency: int = 2
    atomic_extra: int = 2
    weaver_table_latency: int = 2
    weaver_entries: int = 512
    store_latency: int = 1
    eghw_mlp: int = 4

    def __post_init__(self) -> None:
        for field, value in (
            ("num_sockets", self.num_sockets),
            ("cores_per_socket", self.cores_per_socket),
            ("warps_per_core", self.warps_per_core),
            ("threads_per_warp", self.threads_per_warp),
            ("dram_latency", self.dram_latency),
            ("mem_freq_ratio", self.mem_freq_ratio),
            ("alu_latency", self.alu_latency),
            ("shmem_latency", self.shmem_latency),
            ("weaver_table_latency", self.weaver_table_latency),
            ("weaver_entries", self.weaver_entries),
            ("eghw_mlp", self.eghw_mlp),
        ):
            if value < 1:
                raise ConfigError(f"{field} must be at least 1, got {value}")

    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        """Total cores across sockets."""
        return self.num_sockets * self.cores_per_socket

    @property
    def threads_per_core(self) -> int:
        """Resident threads per core."""
        return self.warps_per_core * self.threads_per_warp

    @property
    def total_threads(self) -> int:
        """Grid-wide thread count (the stride of Fig. 9's vertex loop)."""
        return self.num_cores * self.threads_per_core

    @property
    def dram_latency_cycles(self) -> int:
        """DRAM latency expressed in GPU core cycles."""
        return self.dram_latency * self.mem_freq_ratio

    @property
    def dram_service_cycles(self) -> int:
        """Memory-controller occupancy per DRAM line, in core cycles —
        the bandwidth term: total DRAM traffic serializes behind it."""
        return self.dram_service * self.mem_freq_ratio

    # ------------------------------------------------------------------
    def with_weaver_penalty(self) -> "GPUConfig":
        """Halve the L1 to pay for the 512-entry ST/DT tables (Section V).

        The paper evaluates SparseWeaver with L1 reduced from 64KB to
        32KB as a conservative area penalty.
        """
        penalized = CacheConfig(
            max(self.l1.line_bytes * self.l1.ways, self.l1.size_bytes // 2),
            self.l1.line_bytes,
            self.l1.ways,
            self.l1.hit_latency,
        )
        return replace(self, l1=penalized)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def vortex_paper(cls) -> "GPUConfig":
        """The literal Section V configuration (slow in pure Python)."""
        return cls()

    @classmethod
    def vortex_bench(cls) -> "GPUConfig":
        """Scaled-down Vortex: 2 cores, 8 warps — same ratios, fast.

        Caches shrink with the dataset analogs: the paper runs 64KB L1
        against hundred-megabyte graphs, so a faithful *ratio* for our
        10^3-10^5-edge analogs needs a few-KB L1, keeping edge/property
        streams DRAM-bound the way the paper's are.
        """
        return cls(
            num_sockets=1,
            cores_per_socket=2,
            warps_per_core=8,
            l1=CacheConfig(4 * KB, ways=4),
            l2=CacheConfig(32 * KB, hit_latency=20),
        )

    @classmethod
    def vortex_tiny(cls) -> "GPUConfig":
        """Minimal config for unit tests: 1 core, 2 warps, 4 threads."""
        return cls(
            num_sockets=1,
            cores_per_socket=1,
            warps_per_core=2,
            threads_per_warp=4,
            l1=CacheConfig(4 * KB),
            l2=CacheConfig(32 * KB, hit_latency=20),
        )

    @classmethod
    def ampere_like(cls) -> "GPUConfig":
        """A30 stand-in: more cores/warps, bigger caches, fast DRAM."""
        return cls(
            num_sockets=1,
            cores_per_socket=4,
            warps_per_core=16,
            l1=CacheConfig(128 * KB),
            l2=CacheConfig(2 * MB, hit_latency=24),
            dram_latency=80,
        )

    @classmethod
    def ada_like(cls) -> "GPUConfig":
        """RTX 4090 stand-in: even wider, big L2, low DRAM latency."""
        return cls(
            num_sockets=1,
            cores_per_socket=6,
            warps_per_core=16,
            l1=CacheConfig(128 * KB),
            l2=CacheConfig(4 * MB, hit_latency=28),
            dram_latency=60,
        )
