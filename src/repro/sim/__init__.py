"""Cycle-level SIMT GPU simulator (Vortex / SimX analog).

The simulator executes *warp instruction streams*: each warp is a Python
generator yielding :class:`~repro.sim.instructions.Instr` objects. One
warp instruction issues per core per cycle; a warp blocks until its
instruction's latency elapses while other warps issue in the gap — the
latency-hiding mechanism the paper's Figures 12 and 13 depend on.

Fidelity notes live in DESIGN.md §5. The headline: this is an
event-driven model with true cache tag state, per-phase cycle accounting
and a stall taxonomy, not an RTL-equivalent simulator.
"""

#: Timing-model version. Bump whenever a change alters simulated cycle
#: counts; the runtime result cache (:mod:`repro.runtime.cache`) keys
#: entries on it, so a bump invalidates every memoized result at once.
SIMULATOR_VERSION = 1

from repro.sim.config import CacheConfig, GPUConfig
from repro.sim.instructions import Instr, Op, Phase
from repro.sim.stats import KernelStats, StallCat
from repro.sim.memory import MemoryMap, Region, MemoryHierarchy
from repro.sim.cache import Cache
from repro.sim.gpu import GPU, WarpContext
from repro.sim.fast import FastGPU, ReplayHint
from repro.sim.engines import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    SimulatorEngine,
    available_engines,
    build_gpu,
    get_engine,
    register_engine,
    resolve_engine_name,
)

__all__ = [
    "SIMULATOR_VERSION",
    "CacheConfig",
    "GPUConfig",
    "Instr",
    "Op",
    "Phase",
    "KernelStats",
    "StallCat",
    "MemoryMap",
    "Region",
    "MemoryHierarchy",
    "Cache",
    "GPU",
    "WarpContext",
    "FastGPU",
    "ReplayHint",
    "SimulatorEngine",
    "available_engines",
    "build_gpu",
    "get_engine",
    "register_engine",
    "resolve_engine_name",
    "DEFAULT_ENGINE",
    "ENGINE_ENV",
]
