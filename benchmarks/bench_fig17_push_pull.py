"""Fig. 17 — push vs pull execution-cycle breakdown (SparseWeaver, PR).

Paper shape (on symmetric datasets): registration cycles are nearly
identical between directions (<1% in the paper; we gate loosely), the
edge-schedule + edge-info-access total is similar, and which direction
wins the gather&sum stage varies by dataset.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_breakdown, run_single
from repro.graph import dataset

DATASETS = ["bio-human", "graph500", "web-uk", "web-wiki"]


def test_fig17_push_pull_breakdown(benchmark, emit, bench_config):
    graphs = {name: dataset(name, scale=0.25) for name in DATASETS}

    def run():
        out = {}
        for name, graph in graphs.items():
            for direction in ("pull", "push"):
                stats = run_single(
                    make_algorithm("pagerank", iterations=2,
                                   direction=direction),
                    graph, "sparseweaver", config=bench_config,
                ).stats
                out[f"{name}/{direction}"] = stats
        return out

    results = run_once(benchmark, run)
    emit("fig17_push_pull", format_breakdown(
        {k: dict(v.phase_breakdown()) for k, v in results.items()},
        title="Fig 17: push vs pull cycle breakdown (SparseWeaver, PR)"))

    from repro.sim.instructions import Phase

    for name in DATASETS:
        pull = results[f"{name}/pull"]
        push = results[f"{name}/push"]
        reg_pull = pull.phase_cycles[Phase.REGISTRATION]
        reg_push = push.phase_cycles[Phase.REGISTRATION]
        # Registration work is direction-independent on symmetric data.
        assert abs(reg_pull - reg_push) / max(reg_pull, reg_push) < 0.5
        # Both directions complete in the same ballpark.
        assert 0.3 < pull.total_cycles / push.total_cycles < 3.0
