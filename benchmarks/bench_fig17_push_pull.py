"""Fig. 17 — push vs pull execution-cycle breakdown (SparseWeaver, PR).

Paper shape (on symmetric datasets): registration cycles are nearly
identical between directions (<1% in the paper; we gate loosely), the
edge-schedule + edge-info-access total is similar, and which direction
wins the gather&sum stage varies by dataset.

Thin wrapper over the ``fig17`` registry figure.
"""

from repro.sim.instructions import Phase


def test_fig17_push_pull_breakdown(run_figure_bench):
    out = run_figure_bench("fig17")
    results = out.data["stats"]

    for name in out.data["datasets"]:
        pull = results[f"{name}/pull"]
        push = results[f"{name}/push"]
        reg_pull = pull.phase_cycles[Phase.REGISTRATION]
        reg_push = push.phase_cycles[Phase.REGISTRATION]
        # Registration work is direction-independent on symmetric data.
        assert abs(reg_pull - reg_push) / max(reg_pull, reg_push) < 0.5
        # Both directions complete in the same ballpark.
        assert 0.3 < pull.total_cycles / push.total_cycles < 3.0
