"""Table I — implementation-detail comparison of scheduling schemes.

Regenerates the paper's qualitative/arithmetic matrix for a concrete
graph and the paper's Vortex configuration. Paper shape: SparseWeaver is
the only block-granularity scheme with low complexity in both stages and
zero binary searches/atomics/syncs during distribution.

Thin wrapper over the ``table1`` registry figure.
"""


def test_table1_scheme_characteristics(run_figure_bench):
    out = run_figure_bench("table1")
    rows = out.data["rows"]
    assert rows["SparseWeaver"].distribution_costs == "0, 0, 0"
    assert rows["S_em"].edge_mem_access == 2 * out.data["graph_edges"]
