"""Table I — implementation-detail comparison of scheduling schemes.

Regenerates the paper's qualitative/arithmetic matrix for a concrete
graph and the paper's Vortex configuration. Paper shape: SparseWeaver is
the only block-granularity scheme with low complexity in both stages and
zero binary searches/atomics/syncs during distribution.
"""

from conftest import run_once

from repro.graph import dataset
from repro.sched import analytic
from repro.sim import GPUConfig


def test_table1_scheme_characteristics(benchmark, emit):
    graph = dataset("graph500", scale=0.25)
    config = GPUConfig.vortex_paper()

    def run():
        return analytic.characteristics_table(graph, config)

    table = run_once(benchmark, run)
    emit("table1_schemes", table)

    rows = {r.name: r for r in analytic.scheme_characteristics(graph, config)}
    assert rows["SparseWeaver"].distribution_costs == "0, 0, 0"
    assert rows["S_em"].edge_mem_access == 2 * graph.num_edges
