"""Fig. 18 — SparseWeaver vs edge-generating hardware (Case Study 1).

Paper shape: SparseWeaver is 3.64x (geomean) faster than EGHW; the gap
sits in the distribution stage (work-ID calculation, edge-information
access, gather) because EGHW cannot hide its own serial memory reads
and pays extra shared-memory traffic to stage edge records.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_breakdown, geomean, run_single
from repro.graph import dataset, dataset_names


def test_fig18_eghw_comparison(benchmark, emit, bench_config,
                               bench_datasets):
    def run():
        out = {}
        for name, graph in bench_datasets.items():
            for sched in ("eghw", "sparseweaver"):
                out[(name, sched)] = run_single(
                    make_algorithm("pagerank", iterations=2), graph,
                    sched, config=bench_config,
                ).stats
        return out

    results = run_once(benchmark, run)
    names = dataset_names()
    ratios = [
        results[(n, "eghw")].total_cycles
        / results[(n, "sparseweaver")].total_cycles
        for n in names
    ]
    gm = geomean(ratios)

    sample = {
        f"{n}/{s}": dict(results[(n, s)].phase_breakdown())
        for n in names[:3] for s in ("eghw", "sparseweaver")
    }
    text = format_breakdown(
        sample, title="Fig 18: EGHW vs SparseWeaver cycle breakdown")
    text += "\n\nEGHW/SparseWeaver cycle ratios: " + ", ".join(
        f"{n}={r:.2f}" for n, r in zip(names, ratios)
    ) + f"\ngeomean speedup of SparseWeaver over EGHW: {gm:.2f}x"
    emit("fig18_eghw", text)

    assert gm > 2.0  # paper: 3.64x
    # EGHW's loss concentrates in the distribution stage.
    from repro.sim.instructions import Phase

    for n in names[:3]:
        eghw = results[(n, "eghw")]
        sw = results[(n, "sparseweaver")]
        eghw_dist = (eghw.phase_cycles[Phase.SCHEDULE]
                     + eghw.phase_cycles.get(Phase.EDGE_ACCESS, 0))
        sw_dist = (sw.phase_cycles[Phase.SCHEDULE]
                   + sw.phase_cycles.get(Phase.EDGE_ACCESS, 0))
        assert eghw_dist > sw_dist, n
