"""Fig. 18 — SparseWeaver vs edge-generating hardware (Case Study 1).

Paper shape: SparseWeaver is 3.64x (geomean) faster than EGHW; the gap
sits in the distribution stage (work-ID calculation, edge-information
access, gather) because EGHW cannot hide its own serial memory reads
and pays extra shared-memory traffic to stage edge records.

Thin wrapper over the ``fig18`` registry figure.
"""

from repro.sim.instructions import Phase


def test_fig18_eghw_comparison(run_figure_bench):
    out = run_figure_bench("fig18")
    results = out.data["stats"]
    names = out.data["names"]

    assert out.data["geomean"] > 2.0  # paper: 3.64x
    # EGHW's loss concentrates in the distribution stage.
    for n in names[:3]:
        eghw = results[(n, "eghw")]
        sw = results[(n, "sparseweaver")]
        eghw_dist = (eghw.phase_cycles[Phase.SCHEDULE]
                     + eghw.phase_cycles.get(Phase.EDGE_ACCESS, 0))
        sw_dist = (sw.phase_cycles[Phase.SCHEDULE]
                   + sw.phase_cycles.get(Phase.EDGE_ACCESS, 0))
        assert eghw_dist > sw_dist, n
