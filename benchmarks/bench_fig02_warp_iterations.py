"""Fig. 2 — expected warp iterations and speedups on D_bh / D_g500.

(a) closed-form warp-iteration counts for S_vm / S_em / S_wm on the
bio-human and graph500 analogs (paper: S_vm needs 4x / 11x more rounds
than the balanced schemes);
(b) measured PR speedups over S_vm — on the dense bio graph S_em wins,
on graph500 (more vertices per edge) S_wm-style schemes close the gap,
i.e. no single software scheme dominates.

Thin wrapper over the figure registry: the grids live in
``repro.figures.defs.fig02_03_04``; this file keeps the paper-shape
assertions.
"""


def test_fig2a_expected_warp_iterations(run_figure_bench):
    out = run_figure_bench("fig02a")
    series = out.data["series"]
    graphs = out.data["graphs"]
    for name in graphs:
        i = graphs.index(name)
        assert series["vertex_map"][i] > series["warp_map"][i]
        assert series["vertex_map"][i] > series["edge_map"][i]


def test_fig2b_speedup_over_svm(run_figure_bench):
    out = run_figure_bench("fig02b")
    sp = out.data["speedups"]
    # Balanced schemes beat naive vertex mapping on both datasets.
    for g in sp:
        assert max(sp[g]["edge_map"], sp[g]["warp_map"]) > 1.0
