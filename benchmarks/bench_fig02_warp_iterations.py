"""Fig. 2 — expected warp iterations and speedups on D_bh / D_g500.

(a) closed-form warp-iteration counts for S_vm / S_em / S_wm on the
bio-human and graph500 analogs (paper: S_vm needs 4x / 11x more rounds
than the balanced schemes);
(b) measured PR speedups over S_vm — on the dense bio graph S_em wins,
on graph500 (more vertices per edge) S_wm-style schemes close the gap,
i.e. no single software scheme dominates.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_series, run_schedule_comparison
from repro.graph import dataset
from repro.sched import analytic


def test_fig2a_expected_warp_iterations(benchmark, emit, bench_config):
    graphs = {
        "D_bh": dataset("bio-human", scale=0.25),
        "D_g500": dataset("graph500", scale=0.25),
    }

    def run():
        series = {}
        for sched in ("vertex_map", "edge_map", "warp_map"):
            series[sched] = [
                analytic.expected_warp_iterations(g, sched, bench_config)
                for g in graphs.values()
            ]
        return series

    series = run_once(benchmark, run)
    emit("fig02a_warp_iterations",
         format_series("schedule", list(graphs), series,
                       title="Fig 2a: expected warp iterations"))
    for name in graphs:
        i = list(graphs).index(name)
        assert series["vertex_map"][i] > series["warp_map"][i]
        assert series["vertex_map"][i] > series["edge_map"][i]


def test_fig2b_speedup_over_svm(benchmark, emit, bench_config):
    graphs = {
        "D_bh": dataset("bio-human", scale=0.25),
        "D_g500": dataset("graph500", scale=0.25),
    }

    def run():
        return run_schedule_comparison(
            lambda: make_algorithm("pagerank", iterations=2),
            graphs, ["vertex_map", "edge_map", "warp_map"],
            config=bench_config,
        )

    result = run_once(benchmark, run)
    sp = result.speedups()
    emit("fig02b_speedup", format_series(
        "graph", list(graphs),
        {s: [sp[g][s] for g in graphs]
         for s in ("vertex_map", "edge_map", "warp_map")},
        title="Fig 2b: PR speedup over S_vm"))
    # Balanced schemes beat naive vertex mapping on both datasets.
    for g in graphs:
        assert max(sp[g]["edge_map"], sp[g]["warp_map"]) > 1.0
