"""Headline result at the paper's literal Vortex configuration.

Everything else runs on the scaled `vortex_bench` preset for speed;
this benchmark re-checks the central claim on the full Section V
machine — 2 sockets x 3 cores, 32 warps/core, 32 threads/warp, 64KB L1
(32KB with the Weaver penalty), 1MB L2 — to show the shape is not an
artifact of the small preset.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_table, run_single
from repro.graph import dataset
from repro.sim import GPUConfig

SCHEDULES = ["vertex_map", "edge_map", "cta_map", "sparseweaver"]


def test_paper_config_headline(benchmark, emit):
    graph = dataset("hollywood", scale=0.4)
    config = GPUConfig.vortex_paper()

    def run():
        return {
            sched: run_single(
                make_algorithm("pagerank", iterations=2), graph, sched,
                config=config,
            ).stats.total_cycles
            for sched in SCHEDULES
        }

    cycles = run_once(benchmark, run)
    base = cycles["vertex_map"]
    emit("paper_config_headline", format_table(
        ["schedule", "cycles", "speedup over S_vm"],
        [[s, cycles[s], round(base / cycles[s], 2)] for s in SCHEDULES],
        title="PR on hollywood analog, paper Vortex config "
              "(2x3 cores, 32 warps, 32 threads)"))

    assert cycles["sparseweaver"] < cycles["vertex_map"]
    assert cycles["sparseweaver"] < cycles["edge_map"]
    assert cycles["sparseweaver"] < cycles["cta_map"]
    assert base / cycles["sparseweaver"] > 1.5
