"""Headline result at the paper's literal Vortex configuration.

Everything else runs on the scaled `vortex_bench` preset for speed;
this benchmark re-checks the central claim on the full Section V
machine — 2 sockets x 3 cores, 32 warps/core, 32 threads/warp, 64KB L1
(32KB with the Weaver penalty), 1MB L2 — to show the shape is not an
artifact of the small preset.

Thin wrapper over the ``paper_config`` registry figure.
"""


def test_paper_config_headline(run_figure_bench):
    out = run_figure_bench("paper_config")
    cycles = out.data["cycles"]
    assert cycles["sparseweaver"] < cycles["vertex_map"]
    assert cycles["sparseweaver"] < cycles["edge_map"]
    assert cycles["sparseweaver"] < cycles["cta_map"]
    assert cycles["vertex_map"] / cycles["sparseweaver"] > 1.5
