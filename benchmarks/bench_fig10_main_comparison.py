"""Fig. 10 — the headline result: 4 algorithms x 9 graphs x 5 schemes.

Paper shape: SparseWeaver outperforms all software schedules across the
four benchmarks (geomean 2.36x over S_vm, 2.63x over S_em), with the
largest wins on BFS/SSSP (filters amplify imbalance) and the smallest
on CC. Road-network graphs, which have nothing to balance, are the
schemes' worst case.

Thin wrapper over the ``fig10_*`` registry figures. The grids are
submitted through the batch engine, so ``REPRO_JOBS=4`` parallelizes
them and ``REPRO_BENCH_CACHE`` makes re-runs warm — cycle counts are
identical on every path.
"""

import pytest

ALGORITHMS = ["pagerank", "bfs", "sssp", "cc"]


@pytest.mark.parametrize("alg_name", ALGORITHMS)
def test_fig10_algorithm_grid(run_figure_bench, alg_name):
    out = run_figure_bench(f"fig10_{alg_name}")
    gm = out.data["geomeans"]

    # Shape gates: SparseWeaver's geomean leads (small tolerance for
    # per-seed noise) and beats S_vm outright.
    assert gm["sparseweaver"] > 1.0
    best_other = max(v for k, v in gm.items() if k != "sparseweaver")
    assert gm["sparseweaver"] >= 0.9 * best_other
