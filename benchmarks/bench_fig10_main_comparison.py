"""Fig. 10 — the headline result: 4 algorithms x 9 graphs x 5 schemes.

Paper shape: SparseWeaver outperforms all software schedules across the
four benchmarks (geomean 2.36x over S_vm, 2.63x over S_em), with the
largest wins on BFS/SSSP (filters amplify imbalance) and the smallest
on CC. Road-network graphs, which have nothing to balance, are the
schemes' worst case.

Iteration caps keep the simulation tractable; every scheme runs the
same number of rounds so the comparison is apples-to-apples. The grid
is submitted through the batch engine (``engine_opts``), so
``REPRO_JOBS=4`` parallelizes it and ``REPRO_BENCH_CACHE`` makes
re-runs warm — cycle counts are identical on every path.
"""

import pytest
from conftest import run_once

from repro.bench import format_series, geomean, run_schedule_comparison
from repro.graph import dataset_names
from repro.runtime import AlgorithmSpec

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "cta_map",
             "sparseweaver"]

ALGORITHMS = {
    "pagerank": AlgorithmSpec.of("pagerank", iterations=2),
    "bfs": AlgorithmSpec.of("bfs", source=0),
    "sssp": AlgorithmSpec.of("sssp", source=0),
    "cc": AlgorithmSpec.of("cc"),
}
ITER_CAPS = {"pagerank": 2, "bfs": 3, "sssp": 3, "cc": 3}


@pytest.mark.parametrize("alg_name", list(ALGORITHMS))
def test_fig10_algorithm_grid(benchmark, emit, bench_datasets,
                              bench_config, engine_opts, alg_name):
    def run():
        return run_schedule_comparison(
            ALGORITHMS[alg_name], bench_datasets, SCHEDULES,
            config=bench_config, max_iterations=ITER_CAPS[alg_name],
            **engine_opts,
        )

    result = run_once(benchmark, run)
    sp = result.speedups()
    names = dataset_names()
    gm = result.geomean_speedups()
    series = {
        s: [round(sp[g][s], 2) for g in names] + [round(gm[s], 2)]
        for s in SCHEDULES
    }
    emit(f"fig10_{alg_name}", format_series(
        "graph", names + ["geomean"], series,
        title=f"Fig 10 ({alg_name}): speedup over S_vm"))

    # Shape gates: SparseWeaver's geomean leads (small tolerance for
    # per-seed noise) and beats S_vm outright.
    assert gm["sparseweaver"] > 1.0
    best_other = max(v for k, v in gm.items() if k != "sparseweaver")
    assert gm["sparseweaver"] >= 0.9 * best_other
