"""Fig. 19 — GCN operators across 16 weight-dimension sizes.

Paper shape: SpMM favors the weight-parallelized S_vm (no atomics);
GraphSum favors SparseWeaver (the degree-based coefficient is computed
once per edge instead of once per edge per weight column); GraphSum
dominates total time at small weight dims, so SparseWeaver wins overall
there, with S_vm closing as the weight dimension grows.
"""

import numpy as np
from conftest import run_once

from repro.algorithms.gcn import gcn_reference, run_gcn_operator
from repro.bench import format_series, geomean
from repro.graph import dataset

WEIGHT_DIMS = list(range(1, 17))


def test_fig19_gcn_operators(benchmark, emit, bench_config):
    graph = dataset("collab", scale=0.12)
    rng = np.random.default_rng(11)
    in_dim = 4
    features = rng.normal(size=(graph.num_vertices, in_dim))

    def run():
        out = {}
        for dims in WEIGHT_DIMS:
            weight = rng.normal(size=(in_dim, dims))
            ref = gcn_reference(graph, features, weight)
            for strategy in ("vertex_map", "sparseweaver"):
                res = run_gcn_operator(graph, features, weight,
                                       strategy=strategy,
                                       config=bench_config)
                np.testing.assert_allclose(res.features, ref, atol=1e-9)
                out[(dims, strategy)] = res
        return out

    results = run_once(benchmark, run)
    speedups = [
        results[(d, "vertex_map")].stats.total_cycles
        / results[(d, "sparseweaver")].stats.total_cycles
        for d in WEIGHT_DIMS
    ]
    graphsum_speedups = [
        results[(d, "vertex_map")].kernel_stats["graphsum"].total_cycles
        / results[(d, "sparseweaver")].kernel_stats["graphsum"].total_cycles
        for d in WEIGHT_DIMS
    ]
    emit("fig19_gcn", format_series(
        "weight dims", WEIGHT_DIMS,
        {"total speedup": [round(s, 2) for s in speedups],
         "graphsum speedup": [round(s, 2) for s in graphsum_speedups]},
        title="Fig 19: GCN SparseWeaver speedup over weight-parallel "
              "S_vm") + f"\ngeomean total speedup: {geomean(speedups):.2f}x")

    # SpMM is identical under both strategies; GraphSum drives the win.
    spmm_vm = results[(4, "vertex_map")].kernel_stats["spmm"].instructions
    spmm_sw = results[(4, "sparseweaver")].kernel_stats["spmm"].instructions
    assert spmm_vm == spmm_sw
    assert geomean(speedups) > 1.2
    assert graphsum_speedups[0] > graphsum_speedups[-1] * 0.5
