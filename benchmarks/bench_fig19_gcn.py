"""Fig. 19 — GCN operators across 16 weight-dimension sizes.

Paper shape: SpMM favors the weight-parallelized S_vm (no atomics);
GraphSum favors SparseWeaver (the degree-based coefficient is computed
once per edge instead of once per edge per weight column); GraphSum
dominates total time at small weight dims, so SparseWeaver wins overall
there, with S_vm closing as the weight dimension grows.

Thin wrapper over the ``fig19`` registry figure.
"""

from repro.bench import geomean


def test_fig19_gcn_operators(run_figure_bench):
    out = run_figure_bench("fig19")
    results = out.data["results"]
    speedups = out.data["speedups"]
    graphsum_speedups = out.data["graphsum_speedups"]

    # SpMM is identical under both strategies; GraphSum drives the win.
    spmm_vm = results[(4, "vertex_map")].kernel_stats["spmm"].instructions
    spmm_sw = results[(4, "sparseweaver")].kernel_stats["spmm"].instructions
    assert spmm_vm == spmm_sw
    assert geomean(speedups) > 1.2
    assert graphsum_speedups[0] > graphsum_speedups[-1] * 0.5
