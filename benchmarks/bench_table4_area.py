"""Table IV & Fig. 16 — FPGA area overhead of SparseWeaver.

The analytic model is anchored to the paper's synthesis numbers
(DESIGN.md): 678 dedicated registers (0.045%) and +2.96% ALMs for one
core, +2.01% for sixteen, zero block-memory/RAM/DSP increase, and a
0.136% SystemVerilog line-count increase.

Thin wrapper over the ``table4``/``fig16`` registry figures.
"""


def test_table4_area_overhead(run_figure_bench):
    out = run_figure_bench("table4")
    one, sixteen = out.data["rows"]
    assert one.sparseweaver_alms == 108_203
    assert sixteen.sparseweaver_alms == 591_971
    assert one.registers_added == 678
    assert one.block_memory_pct_increase == 0.0


def test_fig16_utilization_summary(run_figure_bench):
    out = run_figure_bench("fig16")
    assert "0% block memory" in out.data["text"]
