"""Table IV & Fig. 16 — FPGA area overhead of SparseWeaver.

The analytic model is anchored to the paper's synthesis numbers
(DESIGN.md): 678 dedicated registers (0.045%) and +2.96% ALMs for one
core, +2.01% for sixteen, zero block-memory/RAM/DSP increase, and a
0.136% SystemVerilog line-count increase.
"""

from conftest import run_once

from repro.bench import format_table
from repro.core import WeaverAreaModel


def test_table4_area_overhead(benchmark, emit):
    model = WeaverAreaModel()

    def run():
        return model.table_rows((1, 16))

    rows = run_once(benchmark, run)
    emit("table4_area", format_table(
        ["cores", "base ALMs", "w/ SparseWeaver", "ALM +%", "regs added",
         "reg +%", "blockmem +%", "RAM +%", "DSP +%"],
        [[r.num_cores, r.base_alms, r.sparseweaver_alms,
          round(r.alm_pct_increase, 2), r.registers_added,
          round(r.register_pct_increase, 3),
          r.block_memory_pct_increase, r.ram_pct_increase,
          r.dsp_pct_increase] for r in rows],
        title="Table IV: FPGA area overhead"))

    one, sixteen = rows
    assert one.sparseweaver_alms == 108_203
    assert sixteen.sparseweaver_alms == 591_971
    assert one.registers_added == 678
    assert one.block_memory_pct_increase == 0.0


def test_fig16_utilization_summary(benchmark, emit):
    model = WeaverAreaModel()

    def run():
        return "\n".join(
            model.utilization_summary(n) for n in (1, 16)
        ) + f"\nRTL lines added: +{model.rtl_line_overhead():.3f}%"

    text = run_once(benchmark, run)
    emit("fig16_utilization", text)
    assert "0% block memory" in text
