"""Fig. 12 — execution cycles vs GPU:DRAM frequency ratio (1..6).

Paper shape: cycle counts grow close to linearly with the ratio (graph
processing is memory-intensive), and SparseWeaver stays below S_vm and
S_em at every ratio because balanced work needs fewer memory round
trips.

Thin wrapper over the ``fig12`` registry figure.
"""


def test_fig12_memory_ratio(run_figure_bench):
    out = run_figure_bench("fig12")
    series = out.data["series"]
    ratios = out.data["ratios"]

    for sched, cs in series.items():
        assert all(a < b for a, b in zip(cs, cs[1:])), sched  # monotone
        growth = cs[-1] / cs[0]
        assert 2.0 < growth < 8.0, sched  # roughly linear in the ratio
    for i, ratio in enumerate(ratios):
        assert series["sparseweaver"][i] < series["vertex_map"][i]
        # S_em's doubled edge traffic hurts more as memory slows; at
        # ratio 1 the two are within noise of each other.
        if ratio >= 2:
            assert series["sparseweaver"][i] < series["edge_map"][i]
        else:
            assert (series["sparseweaver"][i]
                    < 1.05 * series["edge_map"][i])
