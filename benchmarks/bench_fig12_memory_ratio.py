"""Fig. 12 — execution cycles vs GPU:DRAM frequency ratio (1..6).

Paper shape: cycle counts grow close to linearly with the ratio (graph
processing is memory-intensive), and SparseWeaver stays below S_vm and
S_em at every ratio because balanced work needs fewer memory round
trips.
"""

from conftest import run_once

from dataclasses import replace

from repro.algorithms import make_algorithm
from repro.bench import format_series, run_single
from repro.graph import dataset

RATIOS = [1, 2, 3, 4, 5, 6]
SCHEDULES = ["vertex_map", "edge_map", "sparseweaver"]


def test_fig12_memory_ratio(benchmark, emit, bench_config):
    graph = dataset("graph500", scale=0.25)

    def run():
        series = {s: [] for s in SCHEDULES}
        for ratio in RATIOS:
            cfg = replace(bench_config, mem_freq_ratio=ratio)
            for sched in SCHEDULES:
                series[sched].append(run_single(
                    make_algorithm("pagerank", iterations=2), graph,
                    sched, config=cfg,
                ).stats.total_cycles)
        return series

    series = run_once(benchmark, run)
    base = series["vertex_map"][0]
    normalized = {
        s: [round(c / base, 2) for c in cs] for s, cs in series.items()
    }
    emit("fig12_memory_ratio", format_series(
        "ratio", RATIOS, normalized,
        title="Fig 12: cycles vs GPU:DRAM ratio (normalized to S_vm@1)"))

    for sched in SCHEDULES:
        cs = series[sched]
        assert all(a < b for a, b in zip(cs, cs[1:])), sched  # monotone
        growth = cs[-1] / cs[0]
        assert 2.0 < growth < 8.0, sched  # roughly linear in the ratio
    for i, ratio in enumerate(RATIOS):
        assert series["sparseweaver"][i] < series["vertex_map"][i]
        # S_em's doubled edge traffic hurts more as memory slows; at
        # ratio 1 the two are within noise of each other.
        if ratio >= 2:
            assert series["sparseweaver"][i] < series["edge_map"][i]
        else:
            assert series["sparseweaver"][i] < 1.05 * series["edge_map"][i]
