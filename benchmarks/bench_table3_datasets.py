"""Table III — the nine-dataset table, paper scale beside our analogs.

Shape checks: the analogs preserve each family's |E|/|V| regime and
skew direction (bio = dense + skewed, road = sparse + flat, power-law =
skewed).
"""

from conftest import BENCH_SCALE, run_once

from repro.bench import format_table
from repro.graph import dataset_names
from repro.graph.datasets import dataset_spec
from repro.graph.metrics import average_degree, degree_skewness


def test_table3_dataset_inventory(benchmark, emit, bench_datasets):
    def run():
        rows = []
        for name in dataset_names():
            spec = dataset_spec(name)
            g = bench_datasets[name]
            rows.append([
                spec.paper_name,
                spec.paper_vertices,
                spec.paper_edges,
                g.num_vertices,
                g.num_edges,
                round(average_degree(g), 1),
                round(degree_skewness(g), 2),
            ])
        return rows

    rows = run_once(benchmark, run)
    emit("table3_datasets", format_table(
        ["Graph (paper)", "|V| paper", "|E| paper",
         f"|V| analog (x{BENCH_SCALE})", "|E| analog", "avg deg",
         "skewness"],
        rows, title="Table III: datasets (paper scale vs analog)"))

    by_name = {r[0]: r for r in rows}
    bio = by_name["bio-human-gene1 (D_bh)"]
    road = by_name["roadNet-CA (D_rn)"]
    holly = by_name["hollywood-2011 (D_hw)"]
    assert bio[5] > road[5]          # bio denser than road
    assert abs(road[6]) < 2.0        # road is near-flat (deg <= 4)
    assert holly[6] > 1.0            # hollywood is skewed
