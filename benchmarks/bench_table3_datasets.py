"""Table III — the nine-dataset table, paper scale beside our analogs.

Shape checks: the analogs preserve each family's |E|/|V| regime and
skew direction (bio = dense + skewed, road = sparse + flat, power-law =
skewed).

Thin wrapper over the ``table3`` registry figure.
"""


def test_table3_dataset_inventory(run_figure_bench):
    out = run_figure_bench("table3")
    by_name = {r[0]: r for r in out.data["rows"]}
    bio = by_name["bio-human-gene1 (D_bh)"]
    road = by_name["roadNet-CA (D_rn)"]
    holly = by_name["hollywood-2011 (D_hw)"]
    assert bio[5] > road[5]          # bio denser than road
    assert abs(road[6]) < 2.0        # road is near-flat (deg <= 4)
    assert holly[6] > 1.0            # hollywood is skewed
