"""Fig. 4 — stall breakdown and warps/instruction per schedule.

Paper shape (Nsight on A30, PR, D_hw): scheduling schemes introduce
*new* stall categories — shared-memory (short scoreboard) stalls for
S_wm/S_cm, while S_vm's time sits in memory (long scoreboard) stalls —
and warp-latency-per-instruction varies by schedule.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_breakdown, run_single
from repro.graph import dataset
from repro.sim import GPUConfig
from repro.sim.stats import StallCat

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "cta_map", "twc",
             "sparseweaver"]


def test_fig4_stall_breakdown(benchmark, emit):
    graph = dataset("hollywood", scale=0.12)
    config = GPUConfig.ampere_like()

    def run():
        out = {}
        for sched in SCHEDULES:
            stats = run_single(
                make_algorithm("pagerank", iterations=2), graph, sched,
                config=config,
            ).stats
            row = dict(stats.stall_breakdown())
            row["warp/instr"] = round(
                stats.total_cycles / max(stats.instructions, 1), 2
            )
            out[sched] = (stats, row)
        return out

    results = run_once(benchmark, run)
    emit("fig04_stall_breakdown", format_breakdown(
        {k: v for k, (_, v) in results.items()},
        title="Fig 4: stall cycles by category (+ warp/instr)"))

    vm_stats = results["vertex_map"][0]
    wm_stats = results["warp_map"][0]
    assert vm_stats.stall_cycles.get(StallCat.SHARED, 0) == 0
    assert wm_stats.stall_cycles.get(StallCat.SHARED, 0) > 0
    assert vm_stats.stall_cycles.get(StallCat.MEMORY, 0) > 0
