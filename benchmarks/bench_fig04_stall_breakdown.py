"""Fig. 4 — stall breakdown and warps/instruction per schedule.

Paper shape (Nsight on A30, PR, D_hw): scheduling schemes introduce
*new* stall categories — shared-memory (short scoreboard) stalls for
S_wm/S_cm, while S_vm's time sits in memory (long scoreboard) stalls —
and warp-latency-per-instruction varies by schedule.

The grid goes through the batch engine (``engine_opts``) and reads the
simulator's per-core/per-warp stall *attribution* (``stall_cells``)
rather than just category totals, checking that attributed cycles sum
exactly to the category counters — the Nsight-style consistency the
figure relies on.
"""

from conftest import run_once

from repro.bench import format_breakdown, run_schedule_comparison
from repro.graph import dataset
from repro.runtime import AlgorithmSpec
from repro.sim import GPUConfig
from repro.sim.stats import StallCat

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "cta_map", "twc",
             "sparseweaver"]


def test_fig4_stall_breakdown(benchmark, emit, engine_opts):
    graph = dataset("hollywood", scale=0.12)
    config = GPUConfig.ampere_like()

    def run():
        return run_schedule_comparison(
            AlgorithmSpec.of("pagerank", iterations=2),
            {"hollywood": graph}, SCHEDULES, config=config,
            **engine_opts,
        )

    result = run_once(benchmark, run)

    rows = {}
    per_core_rows = {}
    for sched in SCHEDULES:
        stats = result.runs["hollywood"][sched].stats
        row = dict(stats.stall_breakdown())
        row["warp/instr"] = round(
            stats.total_cycles / max(stats.instructions, 1), 2
        )
        rows[sched] = row
        # Attribution must account for every stalled cycle the category
        # counters saw — per (core, warp, category) cells fold back to
        # exactly the same totals (zero counters carry no cells).
        assert stats.stall_cells_total() == {
            cat: c for cat, c in stats.stall_cycles.items() if c
        }
        for core, cats in stats.stall_by_core().items():
            per_core_rows[f"{sched}/core{core}"] = {
                cat.name: cycles for cat, cycles in sorted(cats.items())
            }

    emit("fig04_stall_breakdown", format_breakdown(
        rows, title="Fig 4: stall cycles by category (+ warp/instr)"))
    emit("fig04_stall_attribution", format_breakdown(
        per_core_rows,
        title="Fig 4 (attribution): stall cycles per core"))

    vm_stats = result.runs["hollywood"]["vertex_map"].stats
    wm_stats = result.runs["hollywood"]["warp_map"].stats
    assert vm_stats.stall_cycles.get(StallCat.SHARED, 0) == 0
    assert wm_stats.stall_cycles.get(StallCat.SHARED, 0) > 0
    assert vm_stats.stall_cycles.get(StallCat.MEMORY, 0) > 0
