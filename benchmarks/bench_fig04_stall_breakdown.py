"""Fig. 4 — stall breakdown and warps/instruction per schedule.

Paper shape (Nsight on A30, PR, D_hw): scheduling schemes introduce
*new* stall categories — shared-memory (short scoreboard) stalls for
S_wm/S_cm, while S_vm's time sits in memory (long scoreboard) stalls —
and warp-latency-per-instruction varies by schedule.

Thin wrapper over the ``fig04`` registry figure; the grid rides the
batch engine and the assertions read the per-core/per-warp stall
*attribution* (``stall_cells``) rather than just category totals,
checking that attributed cycles sum exactly to the category counters —
the Nsight-style consistency the figure relies on.
"""

from repro.sim.stats import StallCat


def test_fig4_stall_breakdown(run_figure_bench):
    out = run_figure_bench("fig04")
    stats_by_sched = out.data["stats"]

    for sched, stats in stats_by_sched.items():
        # Attribution must account for every stalled cycle the category
        # counters saw — per (core, warp, category) cells fold back to
        # exactly the same totals (zero counters carry no cells).
        assert stats.stall_cells_total() == {
            cat: c for cat, c in stats.stall_cycles.items() if c
        }, sched

    vm_stats = stats_by_sched["vertex_map"]
    wm_stats = stats_by_sched["warp_map"]
    assert vm_stats.stall_cycles.get(StallCat.SHARED, 0) == 0
    assert wm_stats.stall_cycles.get(StallCat.SHARED, 0) > 0
    assert vm_stats.stall_cycles.get(StallCat.MEMORY, 0) > 0
