"""Simulator microbenchmarks — the calibration suite.

GPU modeling papers validate their simulators with microbenchmarks
(pointer chases for latency, streams for bandwidth, spin loops for
issue). These do the same for our engine: each one isolates a model
parameter and checks the measurement against the configured value, so
any future change to the engine that breaks a first-principles
relationship fails here before it distorts a paper figure.
"""

import numpy as np
from conftest import run_once

from repro.bench import format_table
from repro.sim import GPU, GPUConfig, MemoryMap
from repro.sim.instructions import Phase, alu, load


def one_warp_config():
    return GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=1,
        threads_per_warp=32,
    )


def test_micro_pointer_chase_latency(benchmark, emit):
    """Dependent single-line loads measure pure load-to-use latency."""
    cfg = one_warp_config()
    gpu = GPU(cfg)
    mm = MemoryMap()
    region = mm.alloc("chase", 65536, 8)
    hops = 64

    def factory(ctx):
        def kernel():
            for i in range(hops):
                # stride past the L1 so every hop misses
                yield load(Phase.GATHER, region,
                           np.array([(i * 911) % 60000]))
        return kernel()

    def run():
        return gpu.run_kernel(factory, flush_caches=True)

    stats = run_once(benchmark, run)
    per_hop = stats.total_cycles / hops
    emit("micro_pointer_chase", format_table(
        ["hops", "cycles", "cycles/hop", "configured DRAM latency"],
        [[hops, stats.total_cycles, round(per_hop, 1),
          cfg.dram_latency_cycles]],
        title="Microbenchmark: dependent-load latency"))
    # each hop pays roughly the DRAM latency (plus issue + queue noise)
    assert cfg.dram_latency_cycles <= per_hop \
        <= cfg.dram_latency_cycles * 1.5


def test_micro_stream_bandwidth(benchmark, emit):
    """Many independent warps streaming: throughput converges to the
    DRAM service rate, not the latency."""
    cfg = GPUConfig(num_sockets=1, cores_per_socket=1,
                    warps_per_core=16, threads_per_warp=32)
    gpu = GPU(cfg)
    mm = MemoryMap()
    region = mm.alloc("stream", 1 << 20, 8)
    loads_per_warp = 64

    def factory(ctx):
        def kernel():
            base = ctx.warp_slot * loads_per_warp * 8
            for i in range(loads_per_warp):
                idx = (base + i * 8) * 16 % (1 << 19)
                yield load(Phase.GATHER, region,
                           np.arange(idx, idx + 8))
        return kernel()

    def run():
        return gpu.run_kernel(factory, flush_caches=True)

    stats = run_once(benchmark, run)
    lines = stats.dram_accesses
    cycles_per_line = stats.total_cycles / max(1, lines)
    emit("micro_stream_bandwidth", format_table(
        ["DRAM lines", "cycles", "cycles/line", "configured service"],
        [[lines, stats.total_cycles, round(cycles_per_line, 2),
          cfg.dram_service_cycles]],
        title="Microbenchmark: streaming bandwidth"))
    # throughput-bound: per-line cost approaches the service time,
    # far below the 100-cycle latency
    assert cycles_per_line < cfg.dram_latency_cycles / 2
    assert cycles_per_line >= cfg.dram_service_cycles * 0.9


def test_micro_issue_throughput(benchmark, emit):
    """Back-to-back ALU work: one instruction per cycle per core."""
    cfg = one_warp_config()
    gpu = GPU(cfg)
    n = 2000

    def factory(ctx):
        def kernel():
            for _ in range(n):
                yield alu(Phase.GATHER)
        return kernel()

    def run():
        return gpu.run_kernel(factory)

    stats = run_once(benchmark, run)
    emit("micro_issue_throughput", format_table(
        ["instructions", "cycles", "IPC"],
        [[n, stats.total_cycles,
          round(n / stats.total_cycles, 3)]],
        title="Microbenchmark: issue throughput"))
    assert stats.total_cycles == n  # exactly 1 IPC


def test_micro_latency_hiding_scaling(benchmark, emit):
    """The Fig. 12/13 mechanism in isolation: more resident warps hide
    more of a fixed memory latency."""
    rows = []
    for warps in (1, 2, 4, 8, 16):
        cfg = GPUConfig(num_sockets=1, cores_per_socket=1,
                        warps_per_core=warps, threads_per_warp=32)
        gpu = GPU(cfg)
        mm = MemoryMap()
        region = mm.alloc("lat", 1 << 20, 8)

        def factory(ctx, region=region):
            def kernel():
                for i in range(16):
                    idx = (ctx.warp_slot * 7919 + i * 977) % (1 << 17)
                    yield load(Phase.GATHER, region, np.array([idx]))
                    yield alu(Phase.GATHER, 4)
            return kernel()

        def run(gpu=gpu, factory=factory):
            return gpu.run_kernel(factory, flush_caches=True)

        stats = run_once(benchmark, run) if warps == 1 else run()
        per_op = stats.total_cycles / (16 * warps)
        rows.append([warps, stats.total_cycles, round(per_op, 1)])
    emit("micro_latency_hiding", format_table(
        ["warps", "cycles", "cycles per load+alu"],
        rows, title="Microbenchmark: warp-level latency hiding"))
    # effective per-operation cost falls as warps grow
    assert rows[-1][2] < rows[0][2] / 2
