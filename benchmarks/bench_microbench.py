"""Simulator microbenchmarks — the calibration suite.

GPU modeling papers validate their simulators with microbenchmarks
(pointer chases for latency, streams for bandwidth, spin loops for
issue). These do the same for our engine: each one isolates a model
parameter and checks the measurement against the configured value, so
any future change to the engine that breaks a first-principles
relationship fails here before it distorts a paper figure.

Thin wrappers over the ``micro_*`` registry figures.
"""


def test_micro_pointer_chase_latency(run_figure_bench):
    """Dependent single-line loads measure pure load-to-use latency."""
    out = run_figure_bench("micro_pointer_chase")
    per_hop = out.data["per_hop"]
    dram_latency = out.data["dram_latency"]
    # each hop pays roughly the DRAM latency (plus issue + queue noise)
    assert dram_latency <= per_hop <= dram_latency * 1.5


def test_micro_stream_bandwidth(run_figure_bench):
    """Many independent warps streaming: throughput converges to the
    DRAM service rate, not the latency."""
    out = run_figure_bench("micro_stream_bandwidth")
    cycles_per_line = out.data["cycles_per_line"]
    # throughput-bound: per-line cost approaches the service time,
    # far below the 100-cycle latency
    assert cycles_per_line < out.data["dram_latency"] / 2
    assert cycles_per_line >= out.data["dram_service"] * 0.9


def test_micro_issue_throughput(run_figure_bench):
    """Back-to-back ALU work: one instruction per cycle per core."""
    out = run_figure_bench("micro_issue_throughput")
    assert out.data["cycles"] == out.data["instructions"]  # exactly 1 IPC


def test_micro_latency_hiding_scaling(run_figure_bench):
    """The Fig. 12/13 mechanism in isolation: more resident warps hide
    more of a fixed memory latency."""
    out = run_figure_bench("micro_latency_hiding")
    rows = out.data["rows"]
    # effective per-operation cost falls as warps grow
    assert rows[-1][2] < rows[0][2] / 2
