"""Fig. 13 — execution cycles vs ST/DT read overhead (10..160 cycles).

Paper shape: flat — "shared memory read latency can be concealed by the
GPU pipeline"; one scan per table entry leaves the decoupled FSM scan
and warp-level parallelism to hide even 160-cycle reads. The paper runs
this sweep on a wider (8-core, 32-warp) machine than its main results
precisely because warps are the hiding mechanism; we use 16 warps.
"""

from conftest import run_once

from dataclasses import replace

from repro.algorithms import make_algorithm
from repro.bench import format_series, run_single
from repro.graph import dataset

LATENCIES = [10, 20, 40, 80, 160]


def test_fig13_table_latency(benchmark, emit, bench_config):
    graph = dataset("graph500", scale=0.25)
    wide = replace(bench_config, warps_per_core=16)

    def run():
        cycles = []
        for lat in LATENCIES:
            cfg = replace(wide, weaver_table_latency=lat)
            cycles.append(run_single(
                make_algorithm("pagerank", iterations=2), graph,
                "sparseweaver", config=cfg,
            ).stats.total_cycles)
        return cycles

    cycles = run_once(benchmark, run)
    emit("fig13_table_latency", format_series(
        "table latency", LATENCIES,
        {"sparseweaver": cycles,
         "normalized": [round(c / cycles[0], 3) for c in cycles]},
        title="Fig 13: cycles vs work-table read overhead"))

    # Flatness: 16x latency costs < 25% more cycles.
    assert max(cycles) < 1.25 * min(cycles)
