"""Fig. 13 — execution cycles vs ST/DT read overhead (10..160 cycles).

Paper shape: flat — "shared memory read latency can be concealed by the
GPU pipeline"; one scan per table entry leaves the decoupled FSM scan
and warp-level parallelism to hide even 160-cycle reads. The paper runs
this sweep on a wider (8-core, 32-warp) machine than its main results
precisely because warps are the hiding mechanism; we use 16 warps.

Thin wrapper over the ``fig13`` registry figure.
"""


def test_fig13_table_latency(run_figure_bench):
    out = run_figure_bench("fig13")
    cycles = out.data["cycles"]
    # Flatness: 16x latency costs < 25% more cycles.
    assert max(cycles) < 1.25 * min(cycles)
