"""Figs. 14 & 15 — cache hierarchy sensitivity (PR).

Fig. 14: L1&L2 vs L1&L2&L3 — the L3's presence has no significant
impact. Fig. 15: sweeping L1 and L2 capacity also moves performance
little. Both hold because the edge/property streams dwarf every cache
level; cache capacities here are scaled with the dataset analogs to
preserve that regime (DESIGN.md).

Thin wrapper over the ``fig14``/``fig15`` registry figures.
"""


def test_fig14_l3_cache(run_figure_bench):
    out = run_figure_bench("fig14")
    for sched, (base, l3) in out.data["results"].items():
        assert abs(l3 - base) / base < 0.12, sched


def test_fig15_cache_size_sweep(run_figure_bench):
    out = run_figure_bench("fig15")
    results = out.data["results"]
    l1_sizes = out.data["l1_sizes"]
    l2_sizes = out.data["l2_sizes"]
    for gname in out.data["graphs"]:
        values = [results[(gname, l1, l2)]
                  for l1 in l1_sizes for l2 in l2_sizes]
        # Capacity changes move performance by well under 2x.
        assert max(values) / min(values) < 1.6, gname
