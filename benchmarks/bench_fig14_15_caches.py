"""Figs. 14 & 15 — cache hierarchy sensitivity (PR).

Fig. 14: L1&L2 vs L1&L2&L3 — the L3's presence has no significant
impact. Fig. 15: sweeping L1 and L2 capacity also moves performance
little. Both hold because the edge/property streams dwarf every cache
level; cache capacities here are scaled with the dataset analogs to
preserve that regime (DESIGN.md).
"""

from conftest import run_once

from dataclasses import replace

from repro.algorithms import make_algorithm
from repro.bench import format_series, format_table, run_single
from repro.graph import dataset
from repro.sim import CacheConfig
from repro.sim.config import KB

SCHEDULES = ["vertex_map", "sparseweaver"]

# Paper sweeps L1 {16,32,64}KB and L2 {0.25..8}MB; scaled ~16x down.
L1_SIZES = [2 * KB, 4 * KB, 8 * KB]
L2_SIZES = [8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB]


def test_fig14_l3_cache(benchmark, emit, bench_config):
    graph = dataset("hollywood", scale=0.25)

    def run():
        out = {}
        for sched in SCHEDULES:
            base = run_single(
                make_algorithm("pagerank", iterations=2), graph, sched,
                config=bench_config,
            ).stats.total_cycles
            with_l3 = run_single(
                make_algorithm("pagerank", iterations=2), graph, sched,
                config=replace(
                    bench_config,
                    l3=CacheConfig(64 * KB, hit_latency=40),
                ),
            ).stats.total_cycles
            out[sched] = (base, with_l3)
        return out

    results = run_once(benchmark, run)
    rows = [
        [sched, base, l3, round(base / l3, 3)]
        for sched, (base, l3) in results.items()
    ]
    emit("fig14_l3_cache", format_table(
        ["schedule", "L1&L2 cycles", "L1&L2&L3 cycles", "speedup"],
        rows, title="Fig 14: effect of an L3 cache"))
    for sched, (base, l3) in results.items():
        assert abs(l3 - base) / base < 0.12, sched


def test_fig15_cache_size_sweep(benchmark, emit, bench_config):
    graphs = {
        "D_hw": dataset("hollywood", scale=0.25),
        "D_g500": dataset("graph500", scale=0.25),
    }

    def run():
        out = {}
        for gname, graph in graphs.items():
            for l1 in L1_SIZES:
                for l2 in L2_SIZES:
                    cfg = replace(
                        bench_config,
                        l1=CacheConfig(l1, ways=4),
                        l2=CacheConfig(l2, hit_latency=20),
                    )
                    out[(gname, l1, l2)] = run_single(
                        make_algorithm("pagerank", iterations=1), graph,
                        "sparseweaver", config=cfg,
                    ).stats.total_cycles
        return out

    results = run_once(benchmark, run)
    for gname in graphs:
        series = {
            f"L1={l1 // KB}KB": [
                round(results[(gname, l1, l2)]
                      / results[(gname, L1_SIZES[0], L2_SIZES[0])], 3)
                for l2 in L2_SIZES
            ]
            for l1 in L1_SIZES
        }
        emit(f"fig15_cache_sweep_{gname}", format_series(
            "L2 KB", [s // KB for s in L2_SIZES], series,
            title=f"Fig 15 ({gname}): cycles normalized to smallest config"))
        values = [results[(gname, l1, l2)]
                  for l1 in L1_SIZES for l2 in L2_SIZES]
        # Capacity changes move performance by well under 2x.
        assert max(values) / min(values) < 1.6, gname
