"""Runtime engine — serial vs parallel vs warm-cache wall time.

Not a paper figure: this measures the runtime layer itself on a
Fig. 10-sized slice (PageRank, every dataset analog, the paper's five
schedules).  Three passes over the identical grid:

* ``serial``   — ``jobs=1``, cold cache (the pre-engine behaviour);
* ``parallel`` — ``jobs=4``, cold cache;
* ``warm``     — ``jobs=4`` again, now fully memoized: the telemetry
  summary must show zero simulations.

Thin wrapper over the ``runtime_engine`` registry figure (which drives
its own engines — it is measuring them).
"""


def test_runtime_engine_throughput(run_figure_bench):
    out = run_figure_bench("runtime_engine")
    cycles = out.data["cycles"]

    # Parallel and cached passes must be cycle-identical to serial.
    assert cycles["parallel"] == cycles["serial"]
    assert cycles["warm"] == cycles["serial"]
    # The warm pass must not have simulated anything.
    assert out.data["warm_started"] == 0
    assert out.data["warm_cached"] == out.data["grid_size"]
