"""Runtime engine — serial vs parallel vs warm-cache wall time.

Not a paper figure: this measures the runtime layer itself on a
Fig. 10-sized slice (PageRank, every dataset analog, the paper's five
schedules).  Three passes over the identical grid:

* ``serial``   — ``jobs=1``, cold cache (the pre-engine behaviour);
* ``parallel`` — ``jobs=4``, cold cache;
* ``warm``     — ``jobs=4`` again, now fully memoized: the telemetry
  summary must show zero simulations.
"""

import tempfile
import time

from conftest import BENCH_SCALE, run_once

from repro.bench import format_table
from repro.graph import dataset_names
from repro.runtime import (AlgorithmSpec, BatchEngine, GraphSpec, JobSpec,
                           ResultCache, Telemetry)
from repro.sched import ALL_SCHEDULES


def _grid_specs(bench_config):
    algorithm = AlgorithmSpec.of("pagerank", iterations=2)
    return [
        JobSpec(
            algorithm=algorithm,
            graph=GraphSpec.from_dataset(name, scale=BENCH_SCALE),
            schedule=sched,
            config=bench_config,
            max_iterations=2,
        )
        for name in dataset_names()
        for sched in ALL_SCHEDULES
    ]


def test_runtime_engine_throughput(benchmark, emit, bench_config):
    specs = _grid_specs(bench_config)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")

    def run():
        rows = []
        telemetries = {}

        start = time.perf_counter()
        serial = BatchEngine(jobs=1).run(specs)
        rows.append(["serial (jobs=1)", len(specs),
                     round(time.perf_counter() - start, 3)])

        cache = ResultCache(cache_dir)
        telemetries["parallel"] = Telemetry()
        start = time.perf_counter()
        parallel = BatchEngine(jobs=4, cache=cache,
                               telemetry=telemetries["parallel"]).run(specs)
        rows.append(["parallel (jobs=4)", len(specs),
                     round(time.perf_counter() - start, 3)])

        telemetries["warm"] = Telemetry()
        start = time.perf_counter()
        warm = BatchEngine(jobs=4, cache=cache,
                           telemetry=telemetries["warm"]).run(specs)
        rows.append(["warm cache", len(specs),
                     round(time.perf_counter() - start, 3)])

        cycles = {
            "serial": [o.summary.total_cycles for o in serial],
            "parallel": [o.summary.total_cycles for o in parallel],
            "warm": [o.summary.total_cycles for o in warm],
        }
        return rows, cycles, telemetries, cache

    (rows, cycles, telemetries, cache) = run_once(benchmark, run)
    emit("runtime_engine", format_table(
        ["pass", "jobs in grid", "wall sec"], rows,
        title="Runtime engine: PageRank x 9 datasets x 5 schedules")
        + "\n" + telemetries["warm"].format_summary(cache))

    # Parallel and cached passes must be cycle-identical to serial.
    assert cycles["parallel"] == cycles["serial"]
    assert cycles["warm"] == cycles["serial"]
    # The warm pass must not have simulated anything.
    assert telemetries["warm"].count("started") == 0
    assert telemetries["warm"].count("cached") == len(_grid_specs(
        bench_config))
