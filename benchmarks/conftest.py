"""Shared benchmark fixtures.

Every benchmark regenerates one paper table or figure on scaled dataset
analogs (DESIGN.md explains the scaling), prints the same rows/series
the paper reports, and appends them to ``benchmarks/results/``.

Absolute cycle counts are simulator cycles, not Vortex or Nvidia
hardware time; the comparison targets are the *shapes* recorded in
EXPERIMENTS.md. Each benchmark runs once (``pedantic`` with a single
round) — the interesting measurement is the simulated cycle count, not
the host wall time pytest-benchmark reports.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.graph import dataset_names, dataset
from repro.graph.csr import CSRGraph
from repro.sim import GPUConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset analog scale; override with REPRO_BENCH_SCALE.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_config() -> GPUConfig:
    """The benchmark GPU preset (scaled Vortex)."""
    return GPUConfig.vortex_bench()


@pytest.fixture(scope="session")
def engine_opts():
    """Batch-engine keywords shared by grid benchmarks.

    Grids always go through the engine (``jobs=`` forces the engine
    path, serial when 1); ``REPRO_JOBS`` raises the worker count and
    ``REPRO_BENCH_CACHE`` / ``REPRO_BENCH_TELEMETRY`` opt into a result
    cache directory and a telemetry JSONL sink.  Cycle counts are
    engine-path-invariant, so benchmarks stay bit-identical either way.
    """
    from repro.runtime import ResultCache, Telemetry
    from repro.runtime.engine import resolve_jobs

    opts = {"jobs": resolve_jobs()}
    cache_dir = os.environ.get("REPRO_BENCH_CACHE", "").strip()
    if cache_dir:
        opts["cache"] = ResultCache(cache_dir)
    sink = os.environ.get("REPRO_BENCH_TELEMETRY", "").strip()
    if sink:
        opts["telemetry"] = Telemetry(path=sink)
    return opts


@pytest.fixture(scope="session")
def bench_datasets() -> Dict[str, CSRGraph]:
    """All nine Table III analogs at the benchmark scale."""
    return {name: dataset(name, scale=BENCH_SCALE)
            for name in dataset_names()}


@pytest.fixture(scope="session")
def emit():
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run the experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def figure_ctx():
    """Figure-registry context at the classic benchmark scale.

    At the default ``BENCH_SCALE`` every figure's grid is bit-identical
    to the pre-registry benchmark scripts (``rescale`` is the
    identity), so porting the suite onto the registry changed no cycle
    count.
    """
    from repro.figures import FigureContext

    return FigureContext(scale=BENCH_SCALE)


@pytest.fixture
def run_figure_bench(benchmark, figure_ctx, engine_opts, emit):
    """Run one registered figure through the engine, exactly once.

    Emits every artifact block the figure produces (same
    ``benchmarks/results/<name>.txt`` files as always) and returns the
    :class:`~repro.figures.registry.FigureOutput` whose ``data`` the
    shape gates assert on.
    """
    from repro.figures import run_figure

    def _run(name: str):
        out = run_once(
            benchmark,
            lambda: run_figure(name, figure_ctx, **engine_opts))
        for block_name, text in out.blocks.items():
            emit(block_name, text)
        return out

    return _run
