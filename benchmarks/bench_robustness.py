"""Robustness of the headline claim across analog scales.

The reproduction's central number — SparseWeaver's geomean PR speedup
over naive vertex mapping — should not be an artifact of one dataset
size. This benchmark re-measures it at three analog scales; the claim
holds if the geomean stays solidly above 1.5x at every scale and does
not swing wildly between adjacent scales.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_series, run_schedule_comparison
from repro.graph import dataset, dataset_names

SCALES = [0.15, 0.25, 0.4]
SCHEDULES = ["vertex_map", "sparseweaver"]


def test_headline_stable_across_scales(benchmark, emit, bench_config):
    def run():
        geomeans = []
        for scale in SCALES:
            graphs = {name: dataset(name, scale=scale)
                      for name in dataset_names()}
            result = run_schedule_comparison(
                lambda: make_algorithm("pagerank", iterations=2),
                graphs, SCHEDULES, config=bench_config,
                max_iterations=2,
            )
            geomeans.append(
                result.geomean_speedups()["sparseweaver"]
            )
        return geomeans

    geomeans = run_once(benchmark, run)
    emit("robustness_scales", format_series(
        "analog scale", SCALES,
        {"SW geomean speedup": [round(g, 2) for g in geomeans]},
        title="Robustness: PR headline vs dataset analog scale"))

    for g in geomeans:
        assert g > 1.5
    for a, b in zip(geomeans, geomeans[1:]):
        assert 0.6 < b / a < 1.7  # no wild swings between scales
