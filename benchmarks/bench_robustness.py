"""Robustness of the headline claim across analog scales.

The reproduction's central number — SparseWeaver's geomean PR speedup
over naive vertex mapping — should not be an artifact of one dataset
size. This benchmark re-measures it at three analog scales; the claim
holds if the geomean stays solidly above 1.5x at every scale and does
not swing wildly between adjacent scales.

Thin wrapper over the ``robustness`` registry figure.
"""


def test_headline_stable_across_scales(run_figure_bench):
    out = run_figure_bench("robustness")
    geomeans = out.data["geomeans"]
    for g in geomeans:
        assert g > 1.5
    for a, b in zip(geomeans, geomeans[1:]):
        assert 0.6 < b / a < 1.7  # no wild swings between scales
