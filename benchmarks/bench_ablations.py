"""Ablations of the design decisions DESIGN.md calls out.

Not paper figures — these quantify, on the same simulator, how much
each microarchitectural choice in the Weaver (and the EGHW baseline)
contributes, so the headline results can be attributed:

* decoupled OD prefetch (scan runs ahead of requests),
* zero-entry bitmap skipping (frontier algorithms register mostly
  degree-0 vertices),
* the DT write-buffer bypass (Fig. 13's flatness),
* Weaver table capacity (block-level sharing needs table room),
* EGHW memory-level parallelism (how many MSHRs the offload-everything
  design would need to catch up),
* static vertex splitting (Tigr) vs dynamic weaving.
"""

from dataclasses import replace

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_series, run_single
from repro.graph import dataset
from repro.sched import SparseWeaverSchedule, SplitVertexMapSchedule


def _pr(graph, schedule, config, iters=2):
    return run_single(
        make_algorithm("pagerank", iterations=iters), graph, schedule,
        config=config,
    ).stats.total_cycles


def test_ablation_prefetch_depth(benchmark, emit, bench_config):
    graph = dataset("graph500", scale=0.25)
    depths = [1, 2, 4, 8]

    def run():
        return [
            _pr(graph, SparseWeaverSchedule(prefetch_depth=d),
                bench_config)
            for d in depths
        ]

    cycles = run_once(benchmark, run)
    emit("ablation_prefetch_depth", format_series(
        "prefetch depth", depths, {"cycles": cycles},
        title="Ablation: Weaver OD prefetch depth (PR, graph500)"))
    # Any prefetch at all matters little here (the scan outruns the GPU);
    # it must never hurt.
    assert max(cycles) < 1.3 * min(cycles)


def test_ablation_zero_skip_width(benchmark, emit, bench_config):
    """BFS registers mostly degree-0 vertices; bitmap skipping is what
    keeps the scan from crawling through them."""
    graph = dataset("hollywood", scale=0.25)
    widths = [1, 4, 32]

    def run():
        out = []
        for w in widths:
            out.append(run_single(
                make_algorithm("bfs", source=0), graph,
                SparseWeaverSchedule(zero_skip_width=w),
                config=bench_config, max_iterations=3,
            ).stats.total_cycles)
        return out

    cycles = run_once(benchmark, run)
    emit("ablation_zero_skip_width", format_series(
        "bitmap width", widths, {"cycles": cycles},
        title="Ablation: zero-entry skip width (BFS, hollywood)"))
    assert cycles[-1] < cycles[0]  # wide bitmap scanning pays on BFS


def test_ablation_dt_bypass(benchmark, emit, bench_config):
    graph = dataset("graph500", scale=0.25)
    lat = replace(bench_config, weaver_table_latency=80,
                  warps_per_core=16)

    def run():
        with_bypass = _pr(graph, SparseWeaverSchedule(dt_bypass=True),
                          lat)
        without = _pr(graph, SparseWeaverSchedule(dt_bypass=False), lat)
        return with_bypass, without

    with_bypass, without = run_once(benchmark, run)
    emit("ablation_dt_bypass", format_series(
        "dt bypass", ["on", "off"],
        {"cycles": [with_bypass, without]},
        title="Ablation: DT write-buffer bypass at table latency 80"))
    assert with_bypass < without


def test_ablation_weaver_capacity(benchmark, emit, bench_config):
    """Smaller tables force more registration epochs (extra barriers);
    capacity below the resident thread count costs real cycles."""
    graph = dataset("web-wiki", scale=0.25)
    capacities = [64, 128, 256, 512]

    def run():
        return [
            _pr(graph, "sparseweaver",
                replace(bench_config, weaver_entries=c))
            for c in capacities
        ]

    cycles = run_once(benchmark, run)
    emit("ablation_weaver_capacity", format_series(
        "ST/DT entries", capacities, {"cycles": cycles},
        title="Ablation: Weaver table capacity (PR, web-wiki)"))
    assert cycles[0] >= cycles[-1]


def test_ablation_eghw_mlp(benchmark, emit, bench_config):
    """How much memory-level parallelism the offload-everything design
    needs: even at 16 in-flight requests it trails SparseWeaver."""
    graph = dataset("graph500", scale=0.25)
    mlps = [1, 2, 4, 8, 16]

    def run():
        eghw = [
            _pr(graph, "eghw", replace(bench_config, eghw_mlp=m))
            for m in mlps
        ]
        sw = _pr(graph, "sparseweaver", bench_config)
        return eghw, sw

    eghw, sw = run_once(benchmark, run)
    emit("ablation_eghw_mlp", format_series(
        "EGHW MLP", mlps,
        {"eghw": eghw, "sparseweaver": [sw] * len(mlps)},
        title="Ablation: EGHW in-flight memory requests vs SparseWeaver"))
    assert all(a >= b for a, b in zip(eghw, eghw[1:]))  # MLP helps EGHW
    assert eghw[-1] > sw                                # but not enough


def test_ablation_static_split_vs_weaver(benchmark, emit, bench_config):
    """Storage-format balancing (Tigr splits) vs dynamic weaving: the
    static transform narrows the gap but keeps indirection + atomic
    costs; the gap is the paper's 'decouple algorithm and balancing'
    argument."""
    graph = dataset("hollywood", scale=0.25)
    widths = [4, 8, 16, 32]

    def run():
        vm = _pr(graph, "vertex_map", bench_config)
        split = [
            _pr(graph, SplitVertexMapSchedule(max_degree=w), bench_config)
            for w in widths
        ]
        sw = _pr(graph, "sparseweaver", bench_config)
        return vm, split, sw

    vm, split, sw = run_once(benchmark, run)
    emit("ablation_split_vs_weaver", format_series(
        "split max degree", widths,
        {"split_vertex_map": split,
         "vertex_map": [vm] * len(widths),
         "sparseweaver": [sw] * len(widths)},
        title="Ablation: Tigr-style static splits vs SparseWeaver (PR)"))
    assert min(split) < vm       # static splitting does help
    assert sw < min(split)       # dynamic weaving helps more


def test_ablation_core_scaling(benchmark, emit, bench_config):
    """Scalability: SparseWeaver's per-core unit means block-level
    balancing needs no cross-core coordination; speedup over S_vm is
    stable as cores grow (the paper's 1 vs 16-core area story assumes
    this)."""
    graph = dataset("hollywood", scale=0.25)
    core_counts = [1, 2, 4]

    def run():
        rows = {}
        for cores in core_counts:
            cfg = replace(bench_config, num_sockets=1,
                          cores_per_socket=cores)
            vm = _pr(graph, "vertex_map", cfg)
            sw = _pr(graph, "sparseweaver", cfg)
            rows[cores] = (vm, sw)
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_core_scaling", format_series(
        "cores", core_counts,
        {"vertex_map": [rows[c][0] for c in core_counts],
         "sparseweaver": [rows[c][1] for c in core_counts],
         "speedup": [round(rows[c][0] / rows[c][1], 2)
                     for c in core_counts]},
        title="Ablation: core scaling (PR, hollywood)"))
    for cores in core_counts:
        vm, sw = rows[cores]
        assert sw < vm, cores
    # more cores help both schemes
    assert rows[4][1] < rows[1][1]


def test_ablation_energy_comparison(benchmark, emit, bench_config):
    """Energy view of the main comparison: the SCU/GraphPEG line of
    work motivates hardware scheduling with energy; our first-order
    model shows the Weaver's balanced, redundant-read-free schedule
    saving energy over both naive mapping and EGHW."""
    from repro.sim.energy import estimate_energy

    graph = dataset("hollywood", scale=0.25)
    schedules = ["vertex_map", "edge_map", "cta_map", "sparseweaver",
                 "eghw"]

    def run():
        rows = {}
        for sched in schedules:
            stats = run_single(
                make_algorithm("pagerank", iterations=2), graph, sched,
                config=bench_config,
            ).stats
            rows[sched] = estimate_energy(stats)
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_energy", format_series(
        "schedule", schedules,
        {"total nJ": [round(rows[s].total_nj, 1) for s in schedules],
         "dram nJ": [round(rows[s].picojoules["dram"] / 1000, 1)
                     for s in schedules]},
        title="Ablation: first-order energy (PR, hollywood)"))
    assert rows["sparseweaver"].total_pj < rows["vertex_map"].total_pj
    assert rows["sparseweaver"].total_pj < rows["eghw"].total_pj


def test_ablation_vertex_reordering(benchmark, emit, bench_config):
    """Locality ablation: the paper's datasets are community-reordered;
    shuffling the labels costs every schedule cache hits, and a BFS
    reordering claws most of it back."""
    from repro.graph import community_graph
    from repro.graph.reorder import (
        apply_permutation, bfs_order, locality_score, random_order,
    )

    base = community_graph(60, 100, 400, 1200, seed=5)
    shuffled = apply_permutation(base, random_order(base, seed=5))
    reordered = apply_permutation(shuffled, bfs_order(shuffled))
    variants = {"original": base, "shuffled": shuffled,
                "bfs-reordered": reordered}

    def run():
        rows = {}
        for name, g in variants.items():
            rows[name] = (
                locality_score(g),
                _pr(g, "sparseweaver", bench_config),
            )
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_reordering", format_series(
        "layout", list(variants),
        {"locality score": [round(rows[n][0], 3) for n in variants],
         "SW cycles": [rows[n][1] for n in variants]},
        title="Ablation: vertex ordering vs locality (PR, "
              "community graph)"))
    # label shuffling costs real cycles; BFS reordering recovers most
    assert rows["shuffled"][1] > 1.5 * rows["original"][1]
    assert rows["bfs-reordered"][1] < 0.7 * rows["shuffled"][1]
