"""Ablations of the design decisions DESIGN.md calls out.

Not paper figures — these quantify, on the same simulator, how much
each microarchitectural choice in the Weaver (and the EGHW baseline)
contributes, so the headline results can be attributed:

* decoupled OD prefetch (scan runs ahead of requests),
* zero-entry bitmap skipping (frontier algorithms register mostly
  degree-0 vertices),
* the DT write-buffer bypass (Fig. 13's flatness),
* Weaver table capacity (block-level sharing needs table room),
* EGHW memory-level parallelism (how many MSHRs the offload-everything
  design would need to catch up),
* static vertex splitting (Tigr) vs dynamic weaving.

Thin wrappers over the ``ablation_*`` registry figures; the
parametrized-schedule sweeps ride on ``JobSpec.schedule_params``.
"""


def test_ablation_prefetch_depth(run_figure_bench):
    out = run_figure_bench("ablation_prefetch_depth")
    cycles = out.data["cycles"]
    # Any prefetch at all matters little here (the scan outruns the
    # GPU); it must never hurt.
    assert max(cycles) < 1.3 * min(cycles)


def test_ablation_zero_skip_width(run_figure_bench):
    """BFS registers mostly degree-0 vertices; bitmap skipping is what
    keeps the scan from crawling through them."""
    out = run_figure_bench("ablation_zero_skip_width")
    cycles = out.data["cycles"]
    assert cycles[-1] < cycles[0]  # wide bitmap scanning pays on BFS


def test_ablation_dt_bypass(run_figure_bench):
    out = run_figure_bench("ablation_dt_bypass")
    assert out.data["with_bypass"] < out.data["without"]


def test_ablation_weaver_capacity(run_figure_bench):
    """Smaller tables force more registration epochs (extra barriers);
    capacity below the resident thread count costs real cycles."""
    out = run_figure_bench("ablation_weaver_capacity")
    cycles = out.data["cycles"]
    assert cycles[0] >= cycles[-1]


def test_ablation_eghw_mlp(run_figure_bench):
    """How much memory-level parallelism the offload-everything design
    needs: even at 16 in-flight requests it trails SparseWeaver."""
    out = run_figure_bench("ablation_eghw_mlp")
    eghw = out.data["eghw"]
    sw = out.data["sparseweaver"]
    assert all(a >= b for a, b in zip(eghw, eghw[1:]))  # MLP helps EGHW
    assert eghw[-1] > sw                                # but not enough


def test_ablation_static_split_vs_weaver(run_figure_bench):
    """Storage-format balancing (Tigr splits) vs dynamic weaving: the
    static transform narrows the gap but keeps indirection + atomic
    costs; the gap is the paper's 'decouple algorithm and balancing'
    argument."""
    out = run_figure_bench("ablation_split_vs_weaver")
    split = out.data["split"]
    vm = out.data["vertex_map"]
    sw = out.data["sparseweaver"]
    assert min(split) < vm       # static splitting does help
    assert sw < min(split)       # dynamic weaving helps more


def test_ablation_core_scaling(run_figure_bench):
    """Scalability: SparseWeaver's per-core unit means block-level
    balancing needs no cross-core coordination; speedup over S_vm is
    stable as cores grow (the paper's 1 vs 16-core area story assumes
    this)."""
    out = run_figure_bench("ablation_core_scaling")
    rows = out.data["rows"]
    for cores, (vm, sw) in rows.items():
        assert sw < vm, cores
    # more cores help both schemes
    assert rows[4][1] < rows[1][1]


def test_ablation_energy_comparison(run_figure_bench):
    """Energy view of the main comparison: the SCU/GraphPEG line of
    work motivates hardware scheduling with energy; our first-order
    model shows the Weaver's balanced, redundant-read-free schedule
    saving energy over both naive mapping and EGHW."""
    out = run_figure_bench("ablation_energy")
    rows = out.data["rows"]
    assert rows["sparseweaver"].total_pj < rows["vertex_map"].total_pj
    assert rows["sparseweaver"].total_pj < rows["eghw"].total_pj


def test_ablation_vertex_reordering(run_figure_bench):
    """Locality ablation: the paper's datasets are community-reordered;
    shuffling the labels costs every schedule cache hits, and a BFS
    reordering claws most of it back."""
    out = run_figure_bench("ablation_reordering")
    rows = out.data["rows"]
    # label shuffling costs real cycles; BFS reordering recovers most
    assert rows["shuffled"][1] > 1.5 * rows["original"][1]
    assert rows["bfs-reordered"][1] < 0.7 * rows["shuffled"][1]
