"""Extended scheme ranking — every implemented schedule on one chart.

Beyond Fig. 10's five: the Table I schemes the paper only tabulates
(S_twc, S_twce, S_strict), the Tigr-style static splits, and EGHW, all
ranked on a skewed and a flat workload. Expected shape: SparseWeaver at
or near the top on skew; naive vertex mapping untouchable on roads.

Thin wrapper over the ``extended_ranking`` registry figure.
"""


def test_extended_scheme_ranking(run_figure_bench):
    out = run_figure_bench("extended_ranking")
    cycles = out.data["cycles"]
    schedules = out.data["schedules"]

    holly = {s: cycles[("hollywood", s)] for s in schedules}
    balancing = [s for s in schedules
                 if s not in ("vertex_map", "eghw")]
    # SparseWeaver leads (within noise of the best) on the skewed graph
    best = min(holly[s] for s in balancing)
    assert holly["sparseweaver"] <= 1.1 * best
    road = {s: cycles[("road-ca", s)] for s in schedules}
    # On near-regular graphs nothing beats a regular layout: naive
    # vertex mapping — or the ELL slab, which captures every edge of a
    # degree-<=4 graph with zero imbalance and no topology reads.
    assert min(road, key=road.get) in ("vertex_map", "hybrid_ell")
