"""Extended scheme ranking — every implemented schedule on one chart.

Beyond Fig. 10's five: the Table I schemes the paper only tabulates
(S_twc, S_twce, S_strict), the Tigr-style static splits, and EGHW, all
ranked on a skewed and a flat workload. Expected shape: SparseWeaver at
or near the top on skew; naive vertex mapping untouchable on roads.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_bar_chart, format_table, run_single
from repro.graph import dataset
from repro.sched import EXTENDED_SCHEDULES


def test_extended_scheme_ranking(benchmark, emit, bench_config):
    graphs = {
        "hollywood": dataset("hollywood", scale=0.25),
        "road-ca": dataset("road-ca", scale=0.25),
    }

    def run():
        out = {}
        for gname, graph in graphs.items():
            for sched in EXTENDED_SCHEDULES:
                out[(gname, sched)] = run_single(
                    make_algorithm("pagerank", iterations=2), graph,
                    sched, config=bench_config,
                ).stats.total_cycles
        return out

    cycles = run_once(benchmark, run)
    for gname in graphs:
        base = cycles[(gname, "vertex_map")]
        rows = sorted(
            ([s, cycles[(gname, s)], round(base / cycles[(gname, s)], 2)]
             for s in EXTENDED_SCHEDULES),
            key=lambda r: r[1],
        )
        table = format_table(
            ["schedule", "cycles", "speedup over S_vm"], rows,
            title=f"Extended ranking (PR, {gname})")
        chart = format_bar_chart(
            {r[0]: r[1] for r in rows}, width=36, unit=" cycles")
        emit(f"extended_ranking_{gname}", table + "\n\n" + chart)

    holly = {s: cycles[("hollywood", s)] for s in EXTENDED_SCHEDULES}
    balancing = [s for s in EXTENDED_SCHEDULES
                 if s not in ("vertex_map", "eghw")]
    # SparseWeaver leads (within noise of the best) on the skewed graph
    best = min(holly[s] for s in balancing)
    assert holly["sparseweaver"] <= 1.1 * best
    road = {s: cycles[("road-ca", s)] for s in EXTENDED_SCHEDULES}
    # On near-regular graphs nothing beats a regular layout: naive
    # vertex mapping — or the ELL slab, which captures every edge of a
    # degree-<=4 graph with zero imbalance and no topology reads.
    assert min(road, key=road.get) in ("vertex_map", "hybrid_ell")
