"""Fig. 11 — skewness sensitivity with the power-law family.

Mirrors the paper's setup (fixed |E|, growing |V| by the power-law
generator, so skewness rises from G1 to G6) at scale, on a
full-utilization single-core configuration. Paper shape:
(a) the degree distribution widens and the edge-fraction tail lengthens
from G1 to G6; (b) S_em and S_vm converge (S_em's speedup grows) as
imbalance rises, and SparseWeaver tracks S_em's trend from above.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_series, run_single
from repro.graph import powerlaw_family
from repro.graph.metrics import degree_skewness, edge_fraction_by_degree
from repro.sim import CacheConfig, GPUConfig
from repro.sim.config import KB

VERTEX_COUNTS = [200, 240, 320, 400, 800, 1600]  # scaled 10k..80k
FIXED_EDGES = 19000                               # scaled 1.9M


def _config() -> GPUConfig:
    return GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=4,
        l1=CacheConfig(4 * KB, ways=4),
        l2=CacheConfig(32 * KB, hit_latency=20),
    )


def test_fig11a_degree_distributions(benchmark, emit):
    family = powerlaw_family(VERTEX_COUNTS, FIXED_EDGES, exponent=2.1,
                             seed=7)

    def run():
        rows = []
        for i, g in enumerate(family):
            degs, frac = edge_fraction_by_degree(g)
            rows.append([
                f"G{i + 1}", g.num_vertices, g.num_edges,
                int(g.degrees.max()),
                round(degree_skewness(g), 2),
                round(float(frac[-5:].sum()), 3),
            ])
        return rows

    rows = run_once(benchmark, run)
    from repro.bench import format_table

    emit("fig11a_degree_distribution", format_table(
        ["graph", "|V|", "|E|", "max deg", "skewness", "tail edge frac"],
        rows, title="Fig 11a: G1..G6 degree distributions"))
    skews = [r[4] for r in rows]
    assert skews[-1] > skews[0]  # skewness rises across the family


def test_fig11b_speedup_vs_skewness(benchmark, emit):
    family = powerlaw_family(VERTEX_COUNTS, FIXED_EDGES, exponent=2.1,
                             seed=7)
    cfg = _config()

    def run():
        series = {"edge_map": [], "sparseweaver": []}
        for g in family:
            base = run_single(
                make_algorithm("pagerank", iterations=1), g,
                "vertex_map", config=cfg,
            ).stats.total_cycles
            for sched in series:
                c = run_single(
                    make_algorithm("pagerank", iterations=1), g, sched,
                    config=cfg,
                ).stats.total_cycles
                series[sched].append(round(base / c, 2))
        return series

    series = run_once(benchmark, run)
    labels = [f"G{i + 1}" for i in range(len(family))]
    emit("fig11b_skewness_speedup", format_series(
        "graph", labels, series,
        title="Fig 11b: PR speedup over S_vm vs skewness"))
    # SparseWeaver tracks S_em's trend from above, and both schemes
    # gain from G1 to G3 as skew rises.
    for em, sw in zip(series["edge_map"], series["sparseweaver"]):
        assert sw >= em * 0.95
    assert series["sparseweaver"][2] > series["sparseweaver"][0]
    assert series["edge_map"][2] > series["edge_map"][0]
