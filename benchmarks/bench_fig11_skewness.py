"""Fig. 11 — skewness sensitivity with the power-law family.

Mirrors the paper's setup (fixed |E|, growing |V| by the power-law
generator, so skewness rises from G1 to G6) at scale, on a
full-utilization single-core configuration. Paper shape:
(a) the degree distribution widens and the edge-fraction tail lengthens
from G1 to G6; (b) S_em and S_vm converge (S_em's speedup grows) as
imbalance rises, and SparseWeaver tracks S_em's trend from above.

Thin wrapper over the ``fig11a``/``fig11b`` registry figures.
"""


def test_fig11a_degree_distributions(run_figure_bench):
    out = run_figure_bench("fig11a")
    rows = out.data["rows"]
    skews = [r[4] for r in rows]
    assert skews[-1] > skews[0]  # skewness rises across the family


def test_fig11b_speedup_vs_skewness(run_figure_bench):
    out = run_figure_bench("fig11b")
    series = out.data["series"]
    # SparseWeaver tracks S_em's trend from above, and both schemes
    # gain from G1 to G3 as skew rises.
    for em, sw in zip(series["edge_map"], series["sparseweaver"]):
        assert sw >= em * 0.95
    assert series["sparseweaver"][2] > series["sparseweaver"][0]
    assert series["edge_map"][2] > series["edge_map"][0]
