"""Fig. 3 — software scheduling on two "Nvidia" configurations.

The paper measures PR with software schemes on an Ampere A30 and an Ada
RTX 4090; we substitute two wider simulator presets (DESIGN.md). Paper
shape: complex software schedules often beat S_vm (up to 2.80x), and
the best scheme depends on the GPU and the dataset.

Thin wrapper over the ``fig03`` registry figure.
"""


def test_fig3_software_schemes_on_two_gpus(run_figure_bench):
    out = run_figure_bench("fig03")
    speedups = out.data["speedups"]
    schedules = out.data["schedules"]
    # Shape: some complex scheme beats S_vm on each GPU.
    for cfg_name, per_graph in speedups.items():
        best = max(
            per_graph[g][s] for g in per_graph for s in schedules[1:]
        )
        assert best > 1.0, cfg_name
