"""Fig. 3 — software scheduling on two "Nvidia" configurations.

The paper measures PR with software schemes on an Ampere A30 and an Ada
RTX 4090; we substitute two wider simulator presets (DESIGN.md). Paper
shape: complex software schedules often beat S_vm (up to 2.80x), and
the best scheme depends on the GPU and the dataset.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.bench import format_series, run_schedule_comparison
from repro.graph import dataset
from repro.sim import GPUConfig

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "cta_map", "twc"]


def test_fig3_software_schemes_on_two_gpus(benchmark, emit):
    graphs = {
        "D_hw": dataset("hollywood", scale=0.12),
        "D_uk": dataset("web-uk", scale=0.2),
    }
    configs = {
        "ampere_like": GPUConfig.ampere_like(),
        "ada_like": GPUConfig.ada_like(),
    }

    def run():
        out = {}
        for cfg_name, cfg in configs.items():
            out[cfg_name] = run_schedule_comparison(
                lambda: make_algorithm("pagerank", iterations=2),
                graphs, SCHEDULES, config=cfg,
            ).speedups()
        return out

    speedups = run_once(benchmark, run)
    for cfg_name, per_graph in speedups.items():
        emit(f"fig03_{cfg_name}", format_series(
            "graph", list(graphs),
            {s: [per_graph[g][s] for g in graphs] for s in SCHEDULES},
            title=f"Fig 3 ({cfg_name}): PR speedup over S_vm"))
    # Shape: some complex scheme beats S_vm on each GPU.
    for cfg_name, per_graph in speedups.items():
        best = max(
            per_graph[g][s] for g in graphs for s in SCHEDULES[1:]
        )
        assert best > 1.0, cfg_name
