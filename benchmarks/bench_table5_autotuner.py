"""Table V — auto-tuner vs SparseWeaver (Case Study 3).

Paper shape: the tuner finds a software schedule 1.5-2.2x faster than
S_vm but pays minutes of tuning; SparseWeaver beats S_vm by more
(1.8-5.3x on the Vortex rows) with zero tuning. Our "tuning time" is
the summed simulated cycles of all trials plus measured host seconds.
"""

from conftest import run_once

from repro.algorithms import make_algorithm
from repro.autotune import AutoTuner
from repro.bench import format_table, run_single
from repro.graph import dataset

DATASETS = ["hollywood", "web-uk", "collab", "road-ca"]


def test_table5_autotuner_vs_sparseweaver(benchmark, emit, bench_config):
    graphs = {name: dataset(name, scale=0.25) for name in DATASETS}

    def run():
        rows = []
        for name, graph in graphs.items():
            tuner = AutoTuner(
                lambda: make_algorithm("pagerank", iterations=2),
                config=bench_config,
            )
            report = tuner.tune(graph)
            sw = run_single(
                make_algorithm("pagerank", iterations=2), graph,
                "sparseweaver", config=bench_config,
            ).stats.total_cycles
            rows.append([
                name,
                report.tuning_cycles,
                round(report.tuning_wall_seconds, 2),
                report.baseline_cycles,
                report.best_cycles,
                report.best_schedule,
                round(report.best_speedup, 2),
                sw,
                round(report.baseline_cycles / sw, 2),
            ])
        return rows

    rows = run_once(benchmark, run)
    emit("table5_autotuner", format_table(
        ["graph", "tuning cycles", "tuning sec", "S_vm cycles",
         "best cycles", "best schedule", "tuner speedup", "SW cycles",
         "SW speedup"],
        rows, title="Table V: auto-tuner vs SparseWeaver (PR)"))

    for row in rows:
        name, tuning_cycles = row[0], row[1]
        sw_speedup, tuner_speedup = row[8], row[6]
        # SparseWeaver needs no tuning bill...
        assert tuning_cycles > row[7], name
        if name != "road-ca":
            # ...and on skewed graphs beats or matches the tuned pick.
            assert sw_speedup >= 0.9 * tuner_speedup, name
