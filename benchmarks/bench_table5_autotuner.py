"""Table V — auto-tuner vs SparseWeaver (Case Study 3).

Paper shape: the tuner finds a software schedule 1.5-2.2x faster than
S_vm but pays minutes of tuning; SparseWeaver beats S_vm by more
(1.8-5.3x on the Vortex rows) with zero tuning. Our "tuning time" is
the summed simulated cycles of all trials plus measured host seconds.

Thin wrapper over the ``table5`` registry figure.
"""


def test_table5_autotuner_vs_sparseweaver(run_figure_bench):
    out = run_figure_bench("table5")
    for row in out.data["rows"]:
        name, tuning_cycles = row[0], row[1]
        sw_speedup, tuner_speedup = row[8], row[6]
        # SparseWeaver needs no tuning bill...
        assert tuning_cycles > row[7], name
        if name != "road-ca":
            # ...and on skewed graphs beats or matches the tuned pick.
            assert sw_speedup >= 0.9 * tuner_speedup, name
