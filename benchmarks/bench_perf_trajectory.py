"""Pinned perf-trajectory benchmark: how fast is the platform itself?

Every other benchmark in this directory measures the *simulated*
machine (cycle counts); this one measures the *simulator platform* —
the jobs/s and simulated-cycles/s the batch engine sustains on a
pinned figure subset, the latency of a result-cache hit, and the peak
RSS of the run.  The numbers land in a ``BENCH_<n>.json`` artifact at
the repo root, one file per growth PR, so the trajectory of platform
performance across PRs is a committed, diffable record — and CI's
speed gate fails any PR that regresses jobs/s by more than 25%
against the latest committed baseline.

Usage::

    python benchmarks/bench_perf_trajectory.py --out BENCH_7.json
    python benchmarks/bench_perf_trajectory.py --check BENCH_6.json

The workload is deliberately pinned (one figure, smoke scale, serial
engine) so numbers are comparable across PRs; change ``PINNED_*`` only
with a fresh baseline and a note in CHANGES.md.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The pinned measurement subset.  fig10_pagerank at smoke scale: 15
#: jobs spanning all five paper schedules — enough work to time, small
#: enough to finish in seconds.
PINNED_FIGURE = "fig10_pagerank"
PINNED_SCALE = 0.05
PINNED_JOBS = 1  # serial: one process, comparable across CI hosts

#: Artifact schema; bump (monotonically) when the payload changes
#: shape.  2: added git_commit provenance + optional host_profile.
#: 3: per-engine metrics under ``engines`` (reference + fast); the
#: cold pass became best-of-3 to damp host timing noise (applied to
#: every engine equally, so ratios stay honest).
BENCH_SCHEMA = 3

#: Cold-pass repetitions; the fastest run is reported.  One-shot cold
#: timings on shared CI hosts vary by 10-30%, which is wider than the
#: regressions the gate exists to catch.
COLD_RUNS = 3

#: Engines measured per emission.  ``reference`` feeds the speed gate
#: (its jobs/s is the committed ``metrics`` block); ``fast`` rides
#: along under ``engines`` so the trajectory records the ratio.
MEASURED_ENGINES = ("reference", "fast")

#: Default regression tolerance for --check (fraction of baseline).
DEFAULT_MAX_REGRESS = 0.25

#: Rolling history every emission appends to (see ``repro perf``).
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "results" / \
    "perf_history.jsonl"


def _peak_rss_bytes() -> int:
    """Peak RSS of this process (Linux ru_maxrss is in KiB)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * (1 if sys.platform == "darwin" else 1024)


def measure(engine: str = "reference") -> dict:
    """Run the pinned subset cold and warm; return the metric dict.

    ``engine`` names the simulator execution engine (see
    :mod:`repro.sim.engines`).  The field is excluded from each spec's
    content hash, so stamping it never changes cache identities — the
    warm pass below is a genuine hit-only replay either way.
    """
    import dataclasses

    from repro.figures import FigureContext, get_figure
    from repro.figures.driver import expand_jobs
    from repro.runtime import BatchEngine, ResultCache

    ctx = FigureContext.smoke_context(scale=PINNED_SCALE)
    figure = get_figure(PINNED_FIGURE)
    batch, _per_figure = expand_jobs([figure], ctx)
    batch = [dataclasses.replace(s, engine=engine) for s in batch]

    # Cold: every job simulates (no cache, no journal).  Best of
    # COLD_RUNS — min-of-N is the standard noise filter for
    # wall-clock microbenchmarks; the minimum tracks the code, the
    # spread tracks the host.
    cold_wall = float("inf")
    cycles = 0
    for _ in range(COLD_RUNS):
        cold_engine = BatchEngine(jobs=PINNED_JOBS)
        cold_start = time.perf_counter()
        cold = cold_engine.run(batch)
        wall = time.perf_counter() - cold_start
        assert all(o.status == "ok" for o in cold), [
            (o.spec.label, o.error) for o in cold if o.status != "ok"]
        cycles = sum(o.summary.total_cycles for o in cold)
        cold_wall = min(cold_wall, wall)

    # Warm: populate a scratch cache, then time hit-only lookups.
    with tempfile.TemporaryDirectory(prefix="repro-perf-") as tmp:
        cache = ResultCache(tmp)
        BatchEngine(jobs=PINNED_JOBS, cache=cache).run(batch)
        warm_engine = BatchEngine(jobs=PINNED_JOBS, cache=cache)
        warm_start = time.perf_counter()
        warm = warm_engine.run(batch)
        warm_wall = time.perf_counter() - warm_start
    assert all(o.status == "cached" for o in warm), [
        o.status for o in warm]

    return {
        "engine": engine,
        "jobs": len(batch),
        "cold_wall_seconds": round(cold_wall, 6),
        "jobs_per_second": round(len(batch) / cold_wall, 3),
        "simulated_cycles": cycles,
        "simulated_cycles_per_second": round(cycles / cold_wall, 1),
        "cache_hit_latency_seconds": round(warm_wall / len(batch), 6),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def build_artifact() -> dict:
    """The full BENCH_*.json payload (metrics + provenance)."""
    from repro.obs.profile import get_profiler, git_commit
    from repro.sim import SIMULATOR_VERSION

    engines = {name: measure(name) for name in MEASURED_ENGINES}
    artifact = {
        "schema": BENCH_SCHEMA,
        "benchmark": "perf_trajectory",
        "subset": {
            "figure": PINNED_FIGURE,
            "scale": PINNED_SCALE,
            "engine_jobs": PINNED_JOBS,
            "engines": list(MEASURED_ENGINES),
            "cold_runs": COLD_RUNS,
        },
        "simulator_version": SIMULATOR_VERSION,
        "git_commit": git_commit(REPO_ROOT),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "time": round(time.time(), 3),
        # The gate's denominator: ``metrics`` is always the reference
        # engine, so the committed jobs/s baseline keeps guarding the
        # interpreter even as faster engines land.
        "metrics": engines["reference"],
        "engines": engines,
    }
    profiler = get_profiler()
    if profiler.enabled and profiler.kernels:
        # REPRO_PROFILE=1 runs carry the per-phase rollup alongside
        # the platform metrics so the history links wall-time shifts
        # to the phase that moved.
        artifact["host_profile"] = profiler.summary_payload()
    return artifact


def check(artifact: dict, baseline_path: Path,
          max_regress: float) -> int:
    """Compare against a committed baseline; 0 ok, 1 regressed."""
    baseline = json.loads(baseline_path.read_text())
    base_rate = baseline["metrics"]["jobs_per_second"]
    rate = artifact["metrics"]["jobs_per_second"]
    floor = base_rate * (1.0 - max_regress)
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(f"speed gate vs {baseline_path.name}: "
          f"{rate:.3f} jobs/s vs baseline {base_rate:.3f} "
          f"(floor {floor:.3f}, max regress {max_regress:.0%}) "
          f"-> {verdict}")
    if verdict == "REGRESSION":
        print("jobs/s fell by more than the allowed margin; either "
              "fix the slowdown, refresh the baseline with --out, or "
              "label the PR to skip the gate", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="pinned platform-performance benchmark")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the artifact JSON here")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare jobs/s against this committed "
                             "BENCH_*.json; exit 1 on regression")
    parser.add_argument("--max-regress", type=float,
                        default=DEFAULT_MAX_REGRESS,
                        help="allowed fractional jobs/s drop for "
                             "--check (default 0.25)")
    parser.add_argument("--history", default=str(DEFAULT_HISTORY),
                        metavar="PATH",
                        help="perf-history JSONL this emission appends "
                             "to (read back by 'repro perf')")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append to the perf history")
    args = parser.parse_args(argv)

    artifact = build_artifact()
    print(json.dumps(artifact, indent=1, sort_keys=True))
    eng = artifact["engines"]
    ref_cps = eng["reference"]["simulated_cycles_per_second"]
    fast_cps = eng["fast"]["simulated_cycles_per_second"]
    print(f"engine ratio: fast {fast_cps:,.0f} c/s vs reference "
          f"{ref_cps:,.0f} c/s = {fast_cps / ref_cps:.2f}x")
    if args.out:
        out = Path(args.out)
        out.write_text(json.dumps(artifact, indent=1, sort_keys=True)
                       + "\n")
        print(f"wrote {out}")
    if not args.no_history:
        from repro.obs.profile import PerfHistory

        history = PerfHistory(args.history)
        history.append(artifact)
        print(f"appended to {history.path}")
    if args.check:
        return check(artifact, Path(args.check), args.max_regress)
    return 0


if __name__ == "__main__":
    sys.exit(main())
