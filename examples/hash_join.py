"""Hash-join probe with SparseWeaver (Section VII-A, Algorithm 1).

A database-flavored scenario for the paper's "general usage" claim: the
build side is an orders multimap keyed by customer id — ten whale
customers hold hundreds of orders each, thousands of ordinary customers
hold one or two. The probe phase aggregates order amounts per queried
customer, scanning each customer's full hash chain (Algorithm 1's
loop). Chain lengths inherit the whales' skew, so lockstep
thread-per-query probing serializes whole warps behind each whale —
while the Weaver packs chain slots densely across lanes.

A point-lookup probe (first match wins) is shown too: there the naive
scheme's per-lane early exit is competitive, the same effect the paper
notes for vertex mapping on BFS-like workloads.

    python examples/hash_join.py
"""

import numpy as np

from repro.apps import GPUHashTable, run_hash_lookup
from repro.sim import GPUConfig


def build_orders(rng):
    """Ten whales with ~300 orders; 2,000 regular customers with 2."""
    whales = (np.arange(10) + 1) * 6_400
    regulars = rng.choice(np.arange(20, 5_000), size=2_000,
                          replace=False) * 64 + 32
    customers = np.concatenate([
        np.repeat(whales, 300), np.repeat(regulars, 2),
    ])
    amounts = rng.uniform(1, 100, customers.size)
    return whales, regulars, customers, amounts


def main() -> None:
    rng = np.random.default_rng(7)
    config = GPUConfig.vortex_bench()
    whales, regulars, customers, amounts = build_orders(rng)
    table = GPUHashTable(customers, amounts, num_buckets=1_024,
                         allow_duplicates=True)
    print(f"orders table: {table.size} rows, "
          f"max chain {table.max_chain()}, "
          f"mean chain {table.chain_lengths.mean():.1f}")

    # Probe: mostly regulars, a sprinkle of whales (the hot keys).
    probe = np.concatenate([
        rng.choice(regulars, 460), rng.choice(whales, 52),
    ])
    rng.shuffle(probe)

    print("\n== aggregate probe: total order amount per customer ==")
    results = {}
    for strategy in ("thread_per_query", "sparseweaver"):
        res = run_hash_lookup(table, probe, strategy=strategy,
                              config=config, mode="aggregate")
        results[strategy] = res
        print(f"  {strategy:17s} {res.stats.total_cycles:>9,} cycles, "
              f"{res.stats.warp_iterations:>5} probe rounds")
    np.testing.assert_allclose(results["thread_per_query"].values,
                               results["sparseweaver"].values)
    ratio = (results["thread_per_query"].stats.total_cycles
             / results["sparseweaver"].stats.total_cycles)
    print(f"  SparseWeaver speedup: {ratio:.2f}x")
    whale_total = results["sparseweaver"].values[
        np.isin(probe, whales)].max()
    print(f"  biggest whale aggregate: {whale_total:,.0f}")

    print("\n== point lookup: does this customer exist? ==")
    unique_table = GPUHashTable(
        np.unique(customers), np.arange(np.unique(customers).size,
                                        dtype=float),
        num_buckets=512)
    for strategy in ("thread_per_query", "sparseweaver"):
        res = run_hash_lookup(unique_table, probe, strategy=strategy,
                              config=config, mode="first")
        print(f"  {strategy:17s} {res.stats.total_cycles:>9,} cycles "
              f"(hit rate {res.hit_rate:.2f})")
    print("  (short chains + early exit: little left to weave, "
          "as the paper observes for filter-heavy workloads)")


if __name__ == "__main__":
    main()
