"""Quickstart: run PageRank under SparseWeaver and compare schedules.

Builds a skewed power-law graph (the workload class that defeats naive
vertex mapping), runs PageRank under every scheduling scheme on the
cycle-level simulator, and prints cycles, speedups and the stall mix.

    python examples/quickstart.py
"""

from repro import GraphProcessor, GPUConfig, make_algorithm, powerlaw_graph
from repro.sched import ALL_SCHEDULES


def main() -> None:
    graph = powerlaw_graph(1_000, 6_000, exponent=1.9, seed=42)
    print(f"graph: {graph} (max degree {int(graph.degrees.max())})")

    config = GPUConfig.vortex_bench()
    algorithm = make_algorithm("pagerank", iterations=3)

    baseline = None
    for schedule in ALL_SCHEDULES:
        proc = GraphProcessor(
            make_algorithm("pagerank", iterations=3),
            schedule=schedule,
            config=config,
        )
        result = proc.run(graph)
        cycles = result.total_cycles
        if baseline is None:
            baseline = cycles
        print(f"\n== {schedule} ==")
        print(f"cycles: {cycles:>10,}   speedup over vertex_map: "
              f"{baseline / cycles:.2f}x")
        print("stalls:", ", ".join(
            f"{k}={v}" for k, v in result.stats.stall_breakdown().items()
        ))

    # Results are identical across schedules — verify against one run.
    reference = GraphProcessor(algorithm, schedule="vertex_map",
                               config=config).run(graph)
    top = reference.values.argsort()[-3:][::-1]
    print("\ntop-3 PageRank vertices:", top.tolist())


if __name__ == "__main__":
    main()
