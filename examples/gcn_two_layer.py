"""Two-layer GCN inference end-to-end (node classification shape).

Goes one step past Case Study 2's single operators: a full
``softmax(A_hat ReLU(A_hat X W1) W2)`` forward pass, every layer
running its init/SpMM/GraphSum kernels on the simulator under both
strategies. The per-layer timing shows where the weight-dimension
crossover of Fig. 19 lands in a real model: the wide hidden layer
narrows SparseWeaver's edge, the narrow classifier layer widens it.

    python examples/gcn_two_layer.py
"""

import numpy as np

from repro.algorithms.gcn import gcn_reference, run_gcn_operator
from repro.graph import powerlaw_graph
from repro.sim import GPUConfig


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray) -> np.ndarray:
    e = np.exp(x - x.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


def main() -> None:
    graph = powerlaw_graph(300, 1_800, exponent=1.9, seed=8)
    config = GPUConfig.vortex_bench()
    rng = np.random.default_rng(0)
    num_classes = 4
    hidden = 8
    features = rng.normal(size=(graph.num_vertices, 6))
    w1 = rng.normal(size=(6, hidden)) * 0.4
    w2 = rng.normal(size=(hidden, num_classes)) * 0.4

    print(f"graph: {graph}; features {features.shape}, "
          f"hidden {hidden}, classes {num_classes}\n")

    totals = {}
    predictions = {}
    for strategy in ("vertex_map", "sparseweaver"):
        cycles = 0
        h = features
        for layer, weight in ((1, w1), (2, w2)):
            result = run_gcn_operator(graph, h, weight,
                                      strategy=strategy, config=config)
            np.testing.assert_allclose(
                result.features, gcn_reference(graph, h, weight),
                atol=1e-9)
            cycles += result.stats.total_cycles
            per_kernel = {k: v.total_cycles
                          for k, v in result.kernel_stats.items()}
            print(f"{strategy} layer {layer}: "
                  + ", ".join(f"{k}={v:,}" for k, v in per_kernel.items()))
            h = relu(result.features) if layer == 1 else result.features
        totals[strategy] = cycles
        predictions[strategy] = softmax(h).argmax(axis=1)
        print(f"{strategy} total: {cycles:,} cycles\n")

    assert np.array_equal(predictions["vertex_map"],
                          predictions["sparseweaver"])
    print(f"speedup over weight-parallel S_vm: "
          f"{totals['vertex_map'] / totals['sparseweaver']:.2f}x")
    counts = np.bincount(predictions["sparseweaver"],
                         minlength=num_classes)
    print(f"class distribution: {counts.tolist()}")


if __name__ == "__main__":
    main()
