"""GCN layer inference — Case Study 2 (Fig. 19).

Runs one graph-convolution layer (init + SpMM + GraphSum) over a
citation-network-style analog under the two parallelization strategies
the paper compares: weight-parallel vertex mapping (no atomics, but the
degree-based coefficient is recomputed per weight column) and
SparseWeaver edge-parallel (coefficient computed once per edge).

    python examples/gcn_inference.py
"""

import numpy as np

from repro.algorithms.gcn import gcn_reference, run_gcn_operator
from repro.graph import powerlaw_graph
from repro.sim import GPUConfig


def main() -> None:
    graph = powerlaw_graph(400, 2_400, exponent=1.9, seed=5)
    config = GPUConfig.vortex_bench()
    rng = np.random.default_rng(0)
    in_dim = 8
    features = rng.normal(size=(graph.num_vertices, in_dim))
    print(f"graph: {graph}, input features: {features.shape}\n")

    print(f"{'dims':>4}  {'S_vm (weight-par)':>18}  "
          f"{'SparseWeaver':>13}  {'speedup':>7}")
    for out_dim in (2, 4, 8, 16):
        weight = rng.normal(size=(in_dim, out_dim))
        reference = gcn_reference(graph, features, weight)
        cycles = {}
        for strategy in ("vertex_map", "sparseweaver"):
            result = run_gcn_operator(graph, features, weight,
                                      strategy=strategy, config=config)
            np.testing.assert_allclose(result.features, reference,
                                       atol=1e-9)
            cycles[strategy] = result.stats.total_cycles
        print(f"{out_dim:>4}  {cycles['vertex_map']:>18,}  "
              f"{cycles['sparseweaver']:>13,}  "
              f"{cycles['vertex_map'] / cycles['sparseweaver']:>6.2f}x")

    # Per-kernel view for one configuration.
    weight = rng.normal(size=(in_dim, 4))
    for strategy in ("vertex_map", "sparseweaver"):
        result = run_gcn_operator(graph, features, weight,
                                  strategy=strategy, config=config)
        parts = {k: v.total_cycles for k, v in result.kernel_stats.items()}
        print(f"\n{strategy}: " + ", ".join(
            f"{k}={v:,}" for k, v in parts.items()))


if __name__ == "__main__":
    main()
