"""Weaver under the microscope: replay the paper's Fig. 6 example.

Drives the Weaver FSM directly — registration, the S0..S8 state walk,
dense OD batches, a mid-decode WEAVER_SKIP — so you can see exactly how
sparse per-vertex work becomes dense per-lane work. Also prints the
Table II instruction encodings the compiler would emit.

    python examples/weaver_microscope.py
"""

from repro.core import SparseWorkloadTable, WeaverFSM
from repro.core.isa import WEAVER_INSTRUCTIONS, encode_weaver


def show(result, request: int) -> None:
    walk = " -> ".join(s.value for s in result.states) or "(post-end)"
    print(f"request {request}: states {walk}")
    print(f"  VIDs {result.vids.tolist()}  EIDs {result.eids.tolist()} "
          f"  mask {result.mask.astype(int).tolist()}")
    print(f"  fsm cycles {result.fsm_cycles}, ST reads {result.st_reads}\n")


def main() -> None:
    # The paper's example: entries (vid, start, degree) =
    # (0, 2, 1), (2, 10, 2), (4, 30, 5), 4 threads per warp.
    st = SparseWorkloadTable(capacity=16)
    st.register(0, vid=0, loc=2, degree=1)
    st.register(1, vid=2, loc=10, degree=2)
    st.register(2, vid=4, loc=30, degree=5)
    fsm = WeaverFSM(st, lanes=4)

    print("=== Fig. 6 worked example ===")
    show(fsm.decode(), 1)   # (0,2) (2,10) (2,11) (4,30)
    show(fsm.decode(), 2)   # vertex 4's remaining edges
    show(fsm.decode(), 3)   # -1s: distribution complete

    print("=== WEAVER_SKIP on a supernode ===")
    st2 = SparseWorkloadTable(capacity=4)
    st2.register(0, vid=7, loc=0, degree=12)
    fsm2 = WeaverFSM(st2, lanes=4)
    show(fsm2.decode(), 1)
    print("  ... vertex 7 found what it needed; issuing WEAVER_SKIP(7)")
    fsm2.skip(7)
    show(fsm2.decode(), 2)  # remaining 8 edges vanish

    print("=== Table II encodings ===")
    for name, spec in WEAVER_INSTRUCTIONS.items():
        word = encode_weaver(name, rd=1, rs1=2, rs2=3, rs3=4)
        print(f"  {name:16s} {spec.itype}-type {spec.opcode_name} "
              f"funct={spec.funct}  word=0x{word:08x}")


if __name__ == "__main__":
    main()
