"""Route planning on a road network — where naive mapping wins.

Road networks are the paper's counter-case: degree <= 4 everywhere, so
there is no imbalance to fix and scheduling overhead is pure cost. This
example runs BFS (hop counts) and SSSP (travel times) on the roadNet-CA
analog, shows vertex mapping winning, and then uses the auto-tuner the
way Table V does — demonstrating why the paper argues for hardware that
is cheap enough to never lose badly, instead of per-dataset tuning.

    python examples/route_planning.py
"""

import numpy as np

from repro import GraphProcessor, GPUConfig, make_algorithm
from repro.autotune import AutoTuner
from repro.graph import road_grid_graph
from repro.graph.builder import from_edge_arrays


def weighted_road(side: int, seed: int = 11):
    """Road grid with travel-time weights (0.5-3.0 per segment)."""
    grid = road_grid_graph(side, seed=seed)
    rng = np.random.default_rng(seed)
    src = grid.edge_sources()
    dst = grid.col_idx
    # symmetric weights: hash the undirected pair
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    w = 0.5 + 2.5 * ((lo * 2_654_435_761 + hi) % 1000) / 1000.0
    return from_edge_arrays(src, dst, grid.num_vertices, weights=w)


def main() -> None:
    graph = weighted_road(28)
    config = GPUConfig.vortex_bench()
    depot = 0
    print(f"road network analog: {graph} (max degree "
          f"{int(graph.degrees.max())})\n")

    for name, factory in {
        "hop count (BFS)": lambda: make_algorithm("bfs", source=depot),
        "travel time (SSSP)": lambda: make_algorithm("sssp", source=depot),
    }.items():
        print(f"== {name} ==")
        for schedule in ("vertex_map", "edge_map", "sparseweaver"):
            result = GraphProcessor(
                factory(), schedule=schedule, config=config
            ).run(graph)
            print(f"  {schedule:13s} {result.total_cycles:>9,} cycles "
                  f"({result.iterations} rounds)")

    # The tuner confirms it: on flat graphs the naive schedule wins.
    tuner = AutoTuner(lambda: make_algorithm("sssp", source=depot),
                      config=config, max_iterations=10)
    report = tuner.tune(graph)
    print(f"\nauto-tuner verdict: {report.best_schedule} "
          f"(tuning cost {report.tuning_cycles:,} simulated cycles, "
          f"{report.tuning_wall_seconds:.1f}s host time)")

    sssp = GraphProcessor(
        make_algorithm("sssp", source=depot),
        schedule=report.best_schedule, config=config,
    ).run(graph)
    far = int(np.argmax(np.where(np.isfinite(sssp.values),
                                 sssp.values, -1)))
    print(f"farthest reachable intersection from depot: {far} "
          f"(travel time {sssp.values[far]:.1f})")


if __name__ == "__main__":
    main()
