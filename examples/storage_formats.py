"""Storage formats and the Weaver: CSR, Tigr splits, hybrid ELL.

Section III-D claims SparseWeaver is format-agnostic as long as edges
are consecutive and an offset array indicates the runs — plain CSR,
split vertices (Tigr/CR2), or the CSR residue of a hybrid ELL layout.
This example runs PageRank over one skewed graph through each format's
schedule and shows where every layout pays its bill.

    python examples/storage_formats.py
"""

import numpy as np

from repro import GraphProcessor, GPUConfig, make_algorithm, powerlaw_graph
from repro.frontend import reference
from repro.graph.ell import to_hybrid_ell
from repro.sched import (
    HybridELLSchedule,
    SparseWeaverSchedule,
    SplitVertexMapSchedule,
)


def main() -> None:
    graph = powerlaw_graph(800, 4_800, exponent=1.9, seed=3)
    config = GPUConfig.vortex_bench()
    ref = reference.pagerank(graph, iterations=2)
    print(f"graph: {graph} (max degree {int(graph.degrees.max())})\n")

    hybrid = to_hybrid_ell(graph)
    print(f"hybrid ELL split at width {hybrid.width}: "
          f"{hybrid.ell_edges} edges in the slab "
          f"({hybrid.coverage():.0%}), {hybrid.residue_edges} in the "
          f"CSR residue (hub tails)\n")

    contenders = {
        "CSR + naive vertex map": "vertex_map",
        "Tigr splits (max degree 8)": SplitVertexMapSchedule(max_degree=8),
        "CSR + SparseWeaver": SparseWeaverSchedule(),
        "hybrid ELL + SparseWeaver": HybridELLSchedule(),
    }
    baseline = None
    for label, schedule in contenders.items():
        result = GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=config,
        ).run(graph)
        np.testing.assert_allclose(result.values, ref, atol=1e-9)
        cycles = result.total_cycles
        if baseline is None:
            baseline = cycles
        print(f"{label:28s} {cycles:>8,} cycles "
              f"({baseline / cycles:.2f}x)")

    print("\nTakeaway: static formats (splits, ELL) buy balance at")
    print("format-conversion and indirection cost; the Weaver gets the")
    print("same dense distribution dynamically, and composes with ELL")
    print("by weaving only the residue.")


if __name__ == "__main__":
    main()
