"""Social-network analysis: influence ranking and communities.

The paper's introduction motivates GPU graph processing with social
network analysis — exactly the skewed, hub-heavy workload where
SparseWeaver shines. This example runs the pipeline a social analytics
system would: PageRank for influence, connected components for
community islands, and BFS for reachability from a seed account — each
on the hollywood-2011 analog, under vertex mapping (naive) and
SparseWeaver, with per-phase cycle breakdowns.

    python examples/social_network_analysis.py
"""

import numpy as np

from repro import GraphProcessor, GPUConfig, make_algorithm
from repro.graph import dataset
from repro.graph.metrics import degree_skewness


def run(alg_factory, graph, schedule, config, **kw):
    proc = GraphProcessor(alg_factory(), schedule=schedule, config=config,
                          **kw)
    return proc.run(graph)


def main() -> None:
    graph = dataset("hollywood", scale=0.4)
    config = GPUConfig.vortex_bench()
    print(f"social graph analog: {graph}")
    print(f"degree skewness: {degree_skewness(graph):.1f} "
          f"(hubs own the edges)\n")

    analyses = {
        "influence (PageRank)": lambda: make_algorithm(
            "pagerank", iterations=5),
        "communities (CC)": lambda: make_algorithm("cc"),
        "reach from seed (BFS)": lambda: make_algorithm("bfs", source=0),
    }

    for name, factory in analyses.items():
        naive = run(factory, graph, "vertex_map", config)
        weaver = run(factory, graph, "sparseweaver", config)
        assert np.allclose(naive.values, weaver.values, atol=1e-9)
        print(f"== {name} ==")
        print(f"  naive vertex mapping: {naive.total_cycles:>10,} cycles")
        print(f"  SparseWeaver:         {weaver.total_cycles:>10,} cycles"
              f"  ({naive.total_cycles / weaver.total_cycles:.2f}x)")
        print("  SparseWeaver phases: " + ", ".join(
            f"{k}={v}" for k, v in weaver.stats.phase_breakdown().items()))

    # The analytics output itself:
    pr = run(analyses["influence (PageRank)"], graph, "sparseweaver",
             config)
    cc = run(analyses["communities (CC)"], graph, "sparseweaver", config)
    influencers = pr.values.argsort()[-5:][::-1]
    communities = len(np.unique(cc.values.astype(np.int64)))
    print(f"\ntop influencers: {influencers.tolist()}")
    print(f"community count: {communities}")


if __name__ == "__main__":
    main()
